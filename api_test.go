package repro_test

// Facade-level tests: the public API exposed to library users, exercised
// the way the examples use it.

import (
	"testing"

	"repro"
)

func TestFacadeHeadlineResult(t *testing.T) {
	cfg := repro.DefaultConfig()
	ub := repro.NewMicrobench(1500, repro.DefaultWorkCount, 1)
	base := must(repro.RunDRAMBaseline(cfg, ub))

	od := must(repro.RunOnDemandDevice(cfg, ub))
	if n := od.NormalizedTo(base.Measurement); n > 0.15 {
		t.Errorf("on-demand normalized %.3f, want the killer microsecond", n)
	}

	pf := must(repro.RunPrefetch(cfg, ub, 10, false))
	if n := pf.NormalizedTo(base.Measurement); n < 0.8 {
		t.Errorf("10-thread prefetch normalized %.3f, want near DRAM", n)
	}
	if pf.Diag.MaxLFB != 10 {
		t.Errorf("MaxLFB = %d", pf.Diag.MaxLFB)
	}
}

func TestFacadeMechanismOrdering(t *testing.T) {
	cfg := repro.DefaultConfig()
	ub := repro.NewMicrobench(800, repro.DefaultWorkCount, 1)
	base := must(repro.RunDRAMBaseline(cfg, ub))
	pf := must(repro.RunPrefetch(cfg, ub, 10, false)).NormalizedTo(base.Measurement)
	sq := must(repro.RunSWQueue(cfg, ub, 10, false)).NormalizedTo(base.Measurement)
	kq := must(repro.RunKernelQueue(cfg, ub, 10, false)).NormalizedTo(base.Measurement)
	smt := must(repro.RunSMT(cfg, ub)).NormalizedTo(base.Measurement)
	if !(pf > sq && sq > smt && smt > kq) {
		t.Errorf("ordering pf=%.3f > sq=%.3f > smt=%.3f > kq=%.3f violated", pf, sq, smt, kq)
	}
}

func TestFacadeApplications(t *testing.T) {
	cfg := repro.DefaultConfig()
	g := repro.NewKronecker(7, 8, 1)
	bfs := repro.NewBFS(g, []int{1, 2}, 16, repro.DefaultWorkCount)
	r := must(repro.RunPrefetch(cfg, bfs, 2, true))
	if r.Diag.OnDemand != 0 {
		t.Errorf("BFS replay misses: %d", r.Diag.OnDemand)
	}

	// Accesses counts the measured pass only (the recording pass keeps
	// its own counters); the workload's own Lookups field doubles.
	bloom := repro.NewBloom(1<<14, 4, 100, 80, repro.DefaultWorkCount)
	if r := must(repro.RunSWQueue(cfg, bloom, 4, true)); r.Accesses != 80*4 {
		t.Errorf("bloom accesses = %d", r.Accesses)
	}
	if bloom.Lookups != 2*80 {
		t.Errorf("bloom lookups = %d, want both passes", bloom.Lookups)
	}

	mc := repro.NewMemcached(64, 4, 80, repro.DefaultWorkCount)
	if r := must(repro.RunSWQueue(cfg, mc, 4, false)); r.Accesses != 80*4 {
		t.Errorf("memcached accesses = %d", r.Accesses)
	}
}

func TestFacadeWritesAndConfigKnobs(t *testing.T) {
	cfg := repro.DefaultConfig().WithLatency(2 * repro.Microsecond).WithCores(2)
	rw := repro.NewMicrobenchRW(400, repro.DefaultWorkCount, 1, 2)
	r := must(repro.RunPrefetch(cfg, rw, 4, false))
	if r.Diag.Writes != 2*800 {
		t.Errorf("writes = %d, want 1600 (2 cores)", r.Diag.Writes)
	}
	mem := cfg.AsMemBus()
	if mem.ChipQueueMMIO <= cfg.ChipQueueMMIO {
		t.Error("AsMemBus did not widen the shared queue")
	}
}

func TestFacadeSuites(t *testing.T) {
	q := repro.QuickSuite()
	if q.Iterations >= repro.DefaultSuite().Iterations {
		t.Error("quick suite not smaller than default")
	}
	q.Iterations = 300
	q.Threads = []int{1, 8}
	tb := q.Fig3()
	if tb.ID != "fig3" || len(tb.Series) != 3 {
		t.Errorf("fig3 table malformed: %s with %d series", tb.ID, len(tb.Series))
	}
}

// must unwraps a run result inside tests, where a run error is a bug.
func must(r repro.Result, err error) repro.Result {
	if err != nil {
		panic(err)
	}
	return r
}
