// Package repro is a from-scratch reproduction of "Taming the Killer
// Microsecond" (Cho, Suresh, Palit, Ferdman, Honarmand — MICRO 2018) as
// a Go library.
//
// The paper asks why conventional hardware and software cannot hide
// microsecond-level storage latencies, and shows — on a real Xeon with
// an FPGA-based device emulator — that modest changes suffice: replace
// on-demand loads with software prefetches plus ~30 ns user-level
// context switches, and enlarge the hardware queues (per-core line-fill
// buffers, the chip-level queue on the PCIe path) that track in-flight
// accesses.
//
// Everything the paper's testbed provided in silicon is rebuilt here as
// a deterministic, nanosecond-resolution discrete-event simulation:
// the out-of-order core model, the PCIe Gen2 x8 link, the device
// emulator with its replay/delay/on-demand modules, the descriptor-ring
// software-queue interface, and the Pth-derived user-level threading
// library. On top of that substrate run the paper's microbenchmark and
// its three applications (Graph500 BFS, Bloom filter, Memcached
// lookups), and an experiment harness regenerates every figure of the
// evaluation. See DESIGN.md for the system inventory and EXPERIMENTS.md
// for paper-versus-measured results.
//
// This package is the public facade: it re-exports the platform
// configuration, the workloads, the mechanism runners, and the
// experiment suite.
package repro
