package main

import (
	"flag"
	"fmt"

	"repro/internal/expect"
	"repro/internal/report"
)

// cmdCheck validates a killerusec run report: schema, the paper-claims
// expectation suite, and an optional cell-by-cell diff against a
// baseline report. It is the CI regression gate — any failed claim or
// out-of-tolerance cell makes the command exit non-zero.
func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	in := fs.String("in", "", "run report to check (required; from `killerusec -json`)")
	against := fs.String("against", "", "baseline report to diff cell-by-cell against")
	claims := fs.Bool("claims", false, "evaluate the paper-claims expectation suite")
	tol := fs.Float64("tol", report.DefaultDiffOpt().RelTol, "relative per-cell drift tolerance for -against")
	abs := fs.Float64("abs", report.DefaultDiffOpt().AbsTol, "absolute per-cell drift floor for -against")
	top := fs.Int("top", report.DefaultDiffOpt().Top, "worst regressions to list for -against")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("check needs -in <report.json>")
	}
	if *tol < 0 || *abs < 0 {
		return fmt.Errorf("-tol and -abs must be non-negative")
	}

	r, err := report.ReadFile(*in)
	if err != nil {
		return err
	}
	nt, ns, nc := r.CellCount()
	fmt.Printf("%s: schema %s v%d, %d tables, %d series, %d cells\n",
		*in, r.Schema, r.Version, nt, ns, nc)

	failed := false
	if *claims {
		verdicts := expect.Evaluate(r, expect.Claims())
		for _, v := range verdicts {
			fmt.Printf("%-4s %-28s %s\n", v.Status, v.ID, v.Detail)
		}
		pass, fail, skip := expect.Count(verdicts)
		fmt.Printf("claims: %d pass, %d fail, %d skip\n", pass, fail, skip)
		if fail > 0 {
			failed = true
		}
	}

	if *against != "" {
		base, err := report.ReadFile(*against)
		if err != nil {
			return err
		}
		d := report.Compare(r, base, report.DiffOpt{RelTol: *tol, AbsTol: *abs, Top: *top})
		fmt.Print(d.Summary())
		if !d.Clean() {
			failed = true
		}
	}

	if failed {
		return fmt.Errorf("check failed")
	}
	if *claims || *against != "" {
		fmt.Println("ok")
	}
	return nil
}
