package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/trace"
)

// cmdTrace runs one traced measurement and prints its per-run span
// summary, optionally writing the Perfetto JSON file; with -in it
// instead validates an existing trace file against the trace-event
// schema and summarizes it (the CI gate).
func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	wl := fs.String("workload", "ubench", "workload to trace (ubench, bfs, bloom, memcached, ptrchase)")
	mech := fs.String("mech", "prefetch", "mechanism (ondemand, prefetch, swqueue, kernelq)")
	cores := fs.Int("cores", 1, "cores")
	threads := fs.Int("threads", 8, "threads per core (threaded mechanisms)")
	lookups := fs.Int("lookups", 200, "per-core lookups/iterations")
	out := fs.String("out", "", "also write the Perfetto JSON trace to this file")
	in := fs.String("in", "", "validate and summarize an existing trace file instead of running")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		sum, err := trace.ReadSummary(f)
		if err != nil {
			return err
		}
		fmt.Printf("%s: valid trace-event JSON\n", *in)
		printSummary(sum)
		return nil
	}

	if *cores < 1 {
		return fmt.Errorf("-cores %d must be at least 1", *cores)
	}
	if *threads < 1 {
		return fmt.Errorf("-threads %d must be at least 1", *threads)
	}
	if *lookups < 1 {
		return fmt.Errorf("-lookups %d must be at least 1", *lookups)
	}

	w, err := pickWorkload(*wl, *lookups)
	if err != nil {
		return err
	}
	rec := trace.NewRecorder()
	cfg := platform.Default().WithCores(*cores)
	cfg.Trace = rec

	var res core.Result
	switch *mech {
	case "ondemand":
		res, err = core.RunOnDemandDevice(cfg, w)
	case "prefetch":
		res, err = core.RunPrefetch(cfg, w, *threads, false)
	case "swqueue":
		res, err = core.RunSWQueue(cfg, w, *threads, false)
	case "kernelq":
		res, err = core.RunKernelQueue(cfg, w, *threads, false)
	default:
		return fmt.Errorf("unknown -mech %q (want ondemand, prefetch, swqueue, or kernelq)", *mech)
	}
	if err != nil {
		return err
	}

	if *out != "" {
		if err := rec.WriteFile(*out); err != nil {
			return err
		}
		fmt.Printf("%s: %d trace events\n", *out, rec.Events())
	}
	fmt.Printf("run: %s\n", res.Label)
	fmt.Printf("accesses: %d  p50: %.0fns  p99: %.0fns  p99.9: %.0fns\n",
		res.Accesses, res.Diag.AccessP50Ns, res.Diag.AccessP99Ns, res.Diag.AccessP999Ns)
	printSummary(rec.Summary())
	return nil
}

// printSummary renders per-run span statistics in aligned text.
func printSummary(s trace.Summary) {
	fmt.Printf("events: %d, runs: %d\n", s.Events, len(s.Runs))
	for _, rs := range s.Runs {
		fmt.Printf("\n%s\n", rs.Label)
		fmt.Printf("  tracks:   %d", len(rs.Tracks))
		for _, name := range rs.Tracks {
			fmt.Printf(" %s", name)
		}
		fmt.Println()
		fmt.Printf("  spans:    %d completed, %d open\n", rs.Spans, rs.OpenSpans)
		if rs.Spans > 0 {
			fmt.Printf("  span dur: min %.0fns  mean %.0fns  max %.0fns\n",
				float64(rs.MinDurPs)/1e3, float64(rs.MeanDurPs())/1e3, float64(rs.MaxDurPs)/1e3)
		}
		fmt.Printf("  slices:   %d  instants: %d\n", rs.Slices, rs.Instants)
		fmt.Printf("  counters: %d samples on %d tracks", rs.CounterSamples, len(rs.CounterTracks))
		for _, name := range rs.CounterTracks {
			fmt.Printf(" %s", name)
		}
		fmt.Println()
		if len(rs.PointCounts) > 0 {
			names := make([]string, 0, len(rs.PointCounts))
			for name := range rs.PointCounts {
				names = append(names, name)
			}
			sort.Strings(names)
			fmt.Printf("  edges:   ")
			for _, name := range names {
				fmt.Printf(" %s=%d", name, rs.PointCounts[name])
			}
			fmt.Println()
		}
	}
}
