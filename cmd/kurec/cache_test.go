package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/resultstore"
)

// seedCache writes a few entries under the given build stamp.
func seedCache(t *testing.T, dir, stamp string, n int) {
	t.Helper()
	s, err := resultstore.OpenStamped[int](dir, stamp, n+1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		i := i
		if _, err := s.Do(resultstore.Key(stamp, string(rune('a'+i))), func() (int, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCacheStats(t *testing.T) {
	dir := t.TempDir()
	seedCache(t, dir, experiments.BuildStamp(), 2)
	seedCache(t, dir, "stale-build", 3)

	var out bytes.Buffer
	if err := cmdCacheStats([]string{"-dir", dir}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"cache dir:",
		"current build: " + experiments.BuildStamp(),
		"total:         5 entries",
		"(current)",
		"stale-build",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("stats output missing %q:\n%s", want, got)
		}
	}
}

func TestCacheStatsEmpty(t *testing.T) {
	var out bytes.Buffer
	if err := cmdCacheStats([]string{"-dir", t.TempDir()}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "(empty)") {
		t.Errorf("empty cache stats = %q", out.String())
	}
}

func TestCacheGC(t *testing.T) {
	dir := t.TempDir()
	seedCache(t, dir, experiments.BuildStamp(), 2)
	seedCache(t, dir, "stale-build", 3)

	// Default -keep-build current: the stale build goes, ours stays.
	var out bytes.Buffer
	if err := cmdCacheGC([]string{"-dir", dir}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "removed 3 stale entries") {
		t.Errorf("gc output = %q, want 3 removed", out.String())
	}
	stats, err := resultstore.ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 || stats[0].Stamp != experiments.BuildStamp() || stats[0].Entries != 2 {
		t.Fatalf("after gc: %+v, want only the current build", stats)
	}

	// Explicit -keep-build of an absent stamp clears everything.
	out.Reset()
	if err := cmdCacheGC([]string{"-dir", dir, "-keep-build", "other"}, &out); err != nil {
		t.Fatal(err)
	}
	left, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range left {
		if de.IsDir() && strings.HasPrefix(de.Name(), "b-") {
			t.Errorf("gc -keep-build other left %s behind", filepath.Join(dir, de.Name()))
		}
	}
}

func TestCacheUsageErrors(t *testing.T) {
	if err := cmdCache(nil); err == nil {
		t.Error("cache with no subcommand should fail")
	}
	if err := cmdCache([]string{"bogus"}); err == nil {
		t.Error("unknown cache subcommand should fail")
	}
}
