// Command kurec manages recorded device-access traces — the artifact of
// the paper's two-run methodology (§IV-A): a recording run captures an
// application's (address, data) sequence, which the measured run streams
// from the emulator's on-board DRAM.
//
// Usage:
//
//	kurec record -workload bfs -out trace      # record one trace per core
//	kurec info trace.core0
//	kurec verify trace.core0                   # replay in order, check it drains
//	kurec trace -mech swqueue -out swq.json    # Perfetto trace + span summary
//	kurec trace -in swq.json                   # validate an exported trace
//	kurec check -in run.json -claims           # schema + paper-claims suite
//	kurec check -in run.json -against base.json  # cell-by-cell regression diff
//	kurec cache stats -dir .kucache            # disk cache usage per build stamp
//	kurec cache gc -dir .kucache               # evict entries from stale builds
//	kurec top job-0003                         # live flight-recorder view of a kurecd job
//	kurec metrics run.json -csv                # flatten a report's time series to CSV
//	kurec blame run.json -top                  # per-phase latency blame per cell
//	kurec fleet run.json -instances            # fleet cells + per-instance saturation
//
// Workloads: ubench, bfs, bloom, memcached, ptrchase.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/replay"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = cmdRecord(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "check":
		err = cmdCheck(os.Args[2:])
	case "cache":
		err = cmdCache(os.Args[2:])
	case "top":
		err = cmdTop(os.Args[2:])
	case "metrics":
		err = cmdMetrics(os.Args[2:])
	case "blame":
		err = cmdBlame(os.Args[2:])
	case "fleet":
		err = cmdFleet(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "kurec:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: kurec record|info|verify|trace|check|cache|top|metrics|blame|fleet [flags]")
}

// pickWorkload builds the named workload with CLI-scale parameters.
func pickWorkload(name string, lookups int) (core.Workload, error) {
	switch name {
	case "ubench":
		return workload.NewMicrobench(lookups, workload.DefaultWorkCount, 1), nil
	case "bfs":
		g := workload.NewKronecker(10, 16, 20180610)
		return workload.NewBFS(g, []int{1, 33, 77, 123}, lookups/4+8, workload.DefaultWorkCount), nil
	case "bloom":
		return workload.NewBloom(1<<20, 4, 4096, lookups, workload.DefaultWorkCount), nil
	case "memcached":
		return workload.NewMemcached(4096, 4, lookups, workload.DefaultWorkCount), nil
	case "ptrchase":
		return workload.NewPointerChase(4096, lookups, workload.DefaultWorkCount), nil
	}
	return nil, fmt.Errorf("unknown workload %q", name)
}

func cmdRecord(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	wl := fs.String("workload", "ubench", "workload to record (ubench, bfs, bloom, memcached, ptrchase)")
	out := fs.String("out", "trace", "output path prefix; one .coreN file per core")
	cores := fs.Int("cores", 1, "cores")
	threads := fs.Int("threads", 8, "threads per core")
	mech := fs.String("mech", "prefetch", "mechanism shaping the access order (prefetch, swqueue, kernelq)")
	lookups := fs.Int("lookups", 500, "per-core lookups/iterations")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Validate before any simulation starts: a recording run can take
	// minutes, so bad parameters must fail immediately.
	if *cores < 1 {
		return fmt.Errorf("-cores %d must be at least 1", *cores)
	}
	if *threads < 1 {
		return fmt.Errorf("-threads %d must be at least 1", *threads)
	}
	if *lookups < 1 {
		return fmt.Errorf("-lookups %d must be at least 1", *lookups)
	}
	switch *mech {
	case "prefetch", "swqueue", "kernelq":
	default:
		return fmt.Errorf("unknown -mech %q (want prefetch, swqueue, or kernelq)", *mech)
	}

	w, err := pickWorkload(*wl, *lookups)
	if err != nil {
		return err
	}
	cfg := platform.Default().WithCores(*cores)
	recs, err := core.RecordAccessTrace(cfg, w, *threads, *mech)
	if err != nil {
		return err
	}
	for coreID := 0; coreID < *cores; coreID++ {
		rec := recs[coreID]
		path := fmt.Sprintf("%s.core%d", *out, coreID)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if _, err := rec.WriteTo(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("%s: %d accesses, %d bytes on-board\n", path, rec.Len(), rec.Bytes())
	}
	return nil
}

// describe summarizes a recording for `info`.
func describe(rec *replay.Recording) string {
	unique := map[uint64]bool{}
	zero := 0
	for _, e := range rec.Entries {
		unique[e.Addr] = true
		if e.Data == nil {
			zero++
		}
	}
	s := fmt.Sprintf("accesses:      %d\n", rec.Len())
	s += fmt.Sprintf("unique lines:  %d\n", len(unique))
	s += fmt.Sprintf("zero lines:    %d\n", zero)
	s += fmt.Sprintf("footprint:     %d bytes of device data\n", len(unique)*replay.LineSize)
	s += fmt.Sprintf("on-board size: %d bytes\n", rec.Bytes())
	if rec.Len() > 0 {
		n := rec.Len()
		if n > 4 {
			n = 4
		}
		s += "first accesses:"
		for _, e := range rec.Entries[:n] {
			s += fmt.Sprintf(" %#x", e.Addr)
		}
		s += "\n"
	}
	return s
}

func cmdInfo(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("info needs exactly one trace file")
	}
	rec, err := readTrace(args[0])
	if err != nil {
		return err
	}
	fmt.Print(describe(rec))
	return nil
}

// verifyTrace replays the recording in order through a fresh module and
// reports an error if anything fails to match or drain.
func verifyTrace(rec *replay.Recording) error {
	m := replay.NewModule(rec, 64, 0)
	for i, e := range rec.Entries {
		if _, ok := m.Lookup(e.Addr); !ok {
			return fmt.Errorf("entry %d (addr %#x) failed to match", i, e.Addr)
		}
	}
	if !m.Drained() {
		return fmt.Errorf("%d entries left unmatched", m.Remaining())
	}
	return nil
}

func cmdVerify(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("verify needs exactly one trace file")
	}
	rec, err := readTrace(args[0])
	if err != nil {
		return err
	}
	if err := verifyTrace(rec); err != nil {
		return err
	}
	fmt.Printf("ok: %d accesses replay cleanly\n", rec.Len())
	return nil
}

func readTrace(path string) (*replay.Recording, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return replay.ReadRecording(f)
}
