package main

// The cache subcommand manages the on-disk cell result cache shared by
// `killerusec -cachedir` and `kurecd -cachedir`. Entries are written
// under one subdirectory per build stamp; `stats` attributes disk
// usage per build and `gc` evicts every build but one — stale stamps
// can only waste disk, never be served, so gc is always safe.

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
	"repro/internal/resultstore"
)

func cmdCache(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: kurec cache stats|gc [flags]")
	}
	switch args[0] {
	case "stats":
		return cmdCacheStats(args[1:], os.Stdout)
	case "gc":
		return cmdCacheGC(args[1:], os.Stdout)
	}
	return fmt.Errorf("unknown cache subcommand %q (want stats or gc)", args[0])
}

// humanBytes renders a byte count with a binary-ish unit for the
// stats table.
func humanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

func cmdCacheStats(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("cache stats", flag.ExitOnError)
	dir := fs.String("dir", ".kucache", "cache directory (the -cachedir value)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stamps, err := resultstore.ScanDir(*dir)
	if err != nil {
		return err
	}
	current := experiments.BuildStamp()
	fmt.Fprintf(w, "cache dir:     %s\n", *dir)
	fmt.Fprintf(w, "current build: %s\n", current)
	fmt.Fprintf(w, "hit path:      %s\n", resultstore.StampPath(*dir, current))
	var entries int
	var bytes int64
	for _, st := range stamps {
		entries += st.Entries
		bytes += st.Bytes
	}
	fmt.Fprintf(w, "total:         %d entries, %s\n", entries, humanBytes(bytes))
	for _, st := range stamps {
		marker := ""
		if st.Stamp == current {
			marker = "  (current)"
		}
		fmt.Fprintf(w, "  %-16s %6d entries  %10s  %s%s\n", st.Dir, st.Entries, humanBytes(st.Bytes), st.Stamp, marker)
	}
	if len(stamps) == 0 {
		fmt.Fprintln(w, "  (empty)")
	}
	return nil
}

func cmdCacheGC(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("cache gc", flag.ExitOnError)
	dir := fs.String("dir", ".kucache", "cache directory (the -cachedir value)")
	keep := fs.String("keep-build", "current", `build stamp to keep ("current" = this binary's stamp)`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stamp := *keep
	if stamp == "current" {
		stamp = experiments.BuildStamp()
	}
	entries, bytes, err := resultstore.GC(*dir, stamp)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "removed %d stale entries (%s); kept build %s\n", entries, humanBytes(bytes), stamp)
	return nil
}
