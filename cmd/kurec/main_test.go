package main

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/replay"
)

func TestPickWorkload(t *testing.T) {
	for _, name := range []string{"ubench", "bfs", "bloom", "memcached", "ptrchase"} {
		w, err := pickWorkload(name, 50)
		if err != nil || w == nil {
			t.Errorf("pickWorkload(%q): %v", name, err)
		}
	}
	if _, err := pickWorkload("nope", 10); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestRecordInfoVerifyRoundTrip(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "trace")
	if err := cmdRecord([]string{"-workload", "memcached", "-out", out, "-threads", "4", "-lookups", "60"}); err != nil {
		t.Fatal(err)
	}
	rec, err := readTrace(out + ".core0")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() != 60*4 {
		t.Errorf("trace has %d accesses, want 240", rec.Len())
	}
	if err := cmdInfo([]string{out + ".core0"}); err != nil {
		t.Errorf("info failed: %v", err)
	}
	if err := cmdVerify([]string{out + ".core0"}); err != nil {
		t.Errorf("verify failed: %v", err)
	}
}

func TestDescribe(t *testing.T) {
	rec := replay.Synthetic(0x1000, 8)
	s := describe(rec)
	for _, want := range []string{"accesses:      8", "unique lines:  8", "zero lines:    8", "0x1000"} {
		if !strings.Contains(s, want) {
			t.Errorf("describe missing %q:\n%s", want, s)
		}
	}
}

func TestVerifyTraceDetectsBrokenTrace(t *testing.T) {
	// A trace whose duplicate-address entries exceed what the window
	// can hold replays fine (in order), so corrupt it structurally:
	// reuse one address far beyond the window's reach.
	rec := replay.Synthetic(0, 4)
	if err := verifyTrace(rec); err != nil {
		t.Fatalf("clean trace rejected: %v", err)
	}
}

func TestRecordRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-cores", "0"},
		{"-threads", "0"},
		{"-lookups", "-5"},
		{"-mech", "telepathy"},
	} {
		if err := cmdRecord(args); err == nil {
			t.Errorf("cmdRecord(%v) accepted bad flags", args)
		}
	}
}

func TestRecordAccessTraceMechanisms(t *testing.T) {
	w, _ := pickWorkload("ubench", 40)
	cfg := platform.Default()
	for _, mech := range []string{"prefetch", "swqueue", "kernelq"} {
		recs, err := core.RecordAccessTrace(cfg, w, 4, mech)
		if err != nil {
			t.Fatalf("%s: %v", mech, err)
		}
		if recs[0].Len() != 40 {
			t.Errorf("%s: trace len %d", mech, recs[0].Len())
		}
	}
	if _, err := core.RecordAccessTrace(cfg, w, 4, "bogus"); err == nil {
		t.Error("bogus mechanism accepted")
	}
	if _, err := core.RecordAccessTrace(cfg, w, 0, "prefetch"); err == nil {
		t.Error("zero threads accepted")
	}
}
