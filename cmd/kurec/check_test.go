package main

import (
	"testing"

	"repro/internal/expect"
	"repro/internal/report"
)

const baselinePath = "../../baselines/quick.json"

// TestBaselineSatisfiesClaims gates the committed golden report: every
// paper claim must pass on it, so CI's fresh-sweep-vs-baseline diff and
// the claims suite can never disagree about the checked-in artifact.
func TestBaselineSatisfiesClaims(t *testing.T) {
	r, err := report.ReadFile(baselinePath)
	if err != nil {
		t.Fatal(err)
	}
	verdicts := expect.Evaluate(r, expect.Claims())
	pass, fail, skip := expect.Count(verdicts)
	for _, v := range verdicts {
		if v.Status != expect.Pass {
			t.Errorf("%s %s: %s", v.Status, v.ID, v.Detail)
		}
	}
	if fail > 0 || skip > 0 || pass == 0 {
		t.Fatalf("claims on baseline: %d pass, %d fail, %d skip", pass, fail, skip)
	}
}

// TestDiffGateCatchesPerturbation is the regression-gate acceptance
// check: nudging a single cell beyond tolerance must fail the diff.
func TestDiffGateCatchesPerturbation(t *testing.T) {
	base, err := report.ReadFile(baselinePath)
	if err != nil {
		t.Fatal(err)
	}
	got, err := report.ReadFile(baselinePath)
	if err != nil {
		t.Fatal(err)
	}

	if d := report.Compare(got, base, report.DefaultDiffOpt()); !d.Clean() {
		t.Fatalf("baseline does not diff clean against itself: %s", d.Summary())
	}

	s := got.Table("fig3").FindSeries("1us")
	if s == nil {
		t.Fatal("fig3/1us missing from baseline")
	}
	_, peak := s.Peak()
	for i := range s.Y {
		s.Y[i] = report.Float(peak * 0.8) // 20% drift at the peak cell, beyond the 5% gate
	}
	d := report.Compare(got, base, report.DefaultDiffOpt())
	if d.Clean() {
		t.Fatal("20% cell drift passed the regression gate")
	}
	if len(d.Exceeded) == 0 {
		t.Fatalf("drift not attributed to a cell: %s", d.Summary())
	}
	if c := d.Exceeded[0]; c.Table != "fig3" || c.Series != "1us" {
		t.Fatalf("wrong cell flagged: %+v", c)
	}
}

// TestCheckCommand exercises the CLI entry end to end against the
// committed baseline.
func TestCheckCommand(t *testing.T) {
	if err := cmdCheck([]string{"-in", baselinePath, "-claims", "-against", baselinePath}); err != nil {
		t.Fatal(err)
	}
	if err := cmdCheck([]string{}); err == nil {
		t.Fatal("check without -in should fail")
	}
	if err := cmdCheck([]string{"-in", baselinePath, "-tol", "-1"}); err == nil {
		t.Fatal("negative tolerance should fail")
	}
	if err := cmdCheck([]string{"-in", "no-such-file.json"}); err == nil {
		t.Fatal("missing input should fail")
	}
}
