package main

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/report"
	"repro/internal/serve"
)

// ndjson serializes stream records the way kurecd frames them.
func ndjson(t *testing.T, recs ...serve.StreamWindow) string {
	t.Helper()
	var b strings.Builder
	for _, r := range recs {
		line, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	return b.String()
}

func win(seq uint64, completes uint64) serve.StreamWindow {
	return serve.StreamWindow{
		Type: "window", Seq: seq, Run: "fig3 prefetch", Index: int(seq),
		StartUs: float64(seq) * 10, SpanUs: 10,
		Starts: completes + 1, Completes: completes,
		P50Ns: 900, P99Ns: float64(1000 + seq),
		LFBMean: 1.5, LFBMax: 3,
	}
}

func TestRunTopPlain(t *testing.T) {
	stream := ndjson(t,
		win(0, 5), win(1, 6), win(2, 7),
		serve.StreamWindow{Type: "done", Seq: 3, State: serve.StateDone},
	)
	var out strings.Builder
	if err := runTop(&out, strings.NewReader(stream), true, 0, 60); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 3 windows + done summary:\n%s", len(lines), out.String())
	}
	first := lines[0]
	for _, want := range []string{"window seq=0", `run="fig3 prefetch"`, "t=0us", "span=10us",
		"starts=6", "completes=5", "p50=900ns", "p99=1000ns", "lfb=1.50"} {
		if !strings.Contains(first, want) {
			t.Errorf("plain line missing %q: %s", want, first)
		}
	}
	if got := lines[3]; got != "done state=done windows=3 gaps=0" {
		t.Errorf("done summary = %q", got)
	}
}

func TestRunTopCountsGaps(t *testing.T) {
	// seq jumps 1 -> 5: three records were evicted from the server's
	// bounded buffer before this subscriber read them.
	stream := ndjson(t,
		win(0, 1), win(1, 1), win(5, 1),
		serve.StreamWindow{Type: "done", Seq: 6, State: serve.StateDone},
	)
	var out strings.Builder
	if err := runTop(&out, strings.NewReader(stream), true, 0, 60); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "done state=done windows=3 gaps=3") {
		t.Errorf("gap accounting wrong:\n%s", out.String())
	}
}

func TestRunTopStopsAfterN(t *testing.T) {
	stream := ndjson(t, win(0, 1), win(1, 1), win(2, 1), win(3, 1))
	var out strings.Builder
	if err := runTop(&out, strings.NewReader(stream), true, 2, 60); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out.String(), "window seq="); got != 2 {
		t.Errorf("-n 2 emitted %d windows:\n%s", got, out.String())
	}
}

func TestRunTopScreenMode(t *testing.T) {
	stream := ndjson(t,
		win(0, 5), win(1, 9),
		serve.StreamWindow{Type: "done", Seq: 2, State: serve.StateCancelled},
	)
	var out strings.Builder
	if err := runTop(&out, strings.NewReader(stream), false, 0, 20); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"kurec top — 2 windows", "completes", "p99", "occupancy",
		"gauges: lfb=1.50/3", "job finished: cancelled", "\033[H\033[2J"} {
		if !strings.Contains(s, want) {
			t.Errorf("screen output missing %q", want)
		}
	}
}

func TestRunTopRejectsGarbage(t *testing.T) {
	err := runTop(&strings.Builder{}, strings.NewReader("not json\n"), true, 0, 60)
	if err == nil || !strings.Contains(err.Error(), "bad stream record") {
		t.Errorf("garbage stream error = %v", err)
	}
}

func TestSparkline(t *testing.T) {
	if got := sparkline([]float64{0, 0, 0}, 10); got != "▁▁▁" {
		t.Errorf("all-zero sparkline = %q", got)
	}
	got := sparkline([]float64{0, 4, 8}, 10)
	if []rune(got)[0] != '▁' || []rune(got)[2] != '█' {
		t.Errorf("scaled sparkline = %q, want min..max levels", got)
	}
	if got := sparkline([]float64{1, 2, 3, 4, 5}, 2); len([]rune(got)) != 2 {
		t.Errorf("width clamp failed: %q", got)
	}
}

// metricsFixture is a minimal two-window, one-cell report time series.
func metricsFixture() *report.TimeSeries {
	return &report.TimeSeries{
		WindowUs: 10, LastSpanUs: 4,
		Starts: []uint64{3, 1}, Completes: []uint64{2, 2},
		Retries: []uint64{0, 0}, Timeouts: []uint64{0, 0},
		Abandoned: []uint64{0, 0}, Switches: []uint64{1, 0},
		P50Ns: []report.Float{1000, 1000}, P99Ns: []report.Float{1200, 1100}, P999Ns: []report.Float{1200, 1100},
		LFBMean: []report.Float{0.5, 0.25}, LFBMax: []int{1, 1},
		ChipMean: []report.Float{0, 0}, ChipMax: []int{0, 0},
		SQMean: []report.Float{0, 0}, SQMax: []int{0, 0},
		CQMean: []report.Float{0, 0}, CQMax: []int{0, 0},
		RunnableMean: []report.Float{0, 0}, RunnableMax: []int{0, 0},
		TotalStarts: 4, TotalCompletes: 4,
	}
}

func TestWriteMetricsCSV(t *testing.T) {
	cells := []metricsCell{{table: "fig3", series: "prefetch, t=2", x: 4, ts: metricsFixture()}}
	var out strings.Builder
	if err := writeMetricsCSV(&out, cells); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want header + 2 windows:\n%s", len(lines), out.String())
	}
	if !strings.HasPrefix(lines[0], "table,series,x,window,start_us,window_us,starts,") {
		t.Errorf("header = %q", lines[0])
	}
	// The comma in the label must be quoted; window 0 spans the full
	// window, the final window only its partial span.
	if want := `fig3,"prefetch, t=2",4,0,0,10,3,2,0,0,0,1,1000,1200,1200,0.5,1,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0`; lines[1] != want {
		t.Errorf("row 0 = %q\n  want %q", lines[1], want)
	}
	if !strings.HasPrefix(lines[2], `fig3,"prefetch, t=2",4,1,10,4,`) {
		t.Errorf("row 1 start/span wrong: %q", lines[2])
	}
}

func TestCSVField(t *testing.T) {
	if got := csvField("plain"); got != "plain" {
		t.Errorf("plain field quoted: %q", got)
	}
	if got := csvField(`a,"b"`); got != `"a,""b"""` {
		t.Errorf("quoting = %q", got)
	}
}
