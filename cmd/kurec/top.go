package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"repro/internal/serve"
)

// cmdTop is the live terminal view of a kurecd job's flight-recorder
// stream: it attaches to GET /v1/runs/{id}/metrics and renders each
// sealed simulation window as it arrives — throughput and p99
// sparklines plus the occupancy gauges on a TTY, one summary line per
// window with -plain (the mode CI and pipes get automatically).
//
//	kurec top job-0003                          # against localhost:8080
//	kurec top -addr http://host:9090 job-0003
//	kurec top -plain -n 20 job-0003             # 20 windows, then exit
//	kurec top http://host:9090/v1/runs/job-0003/metrics
func cmdTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "kurecd base URL")
	plain := fs.Bool("plain", false, "one line per window instead of the live screen (default when stdout is not a terminal)")
	n := fs.Int("n", 0, "exit after this many window records (0 = stream until the job finishes)")
	width := fs.Int("width", 60, "sparkline width in windows (screen mode)")
	// The target may precede the flags (`kurec top job-3 -plain`) or
	// follow them; peel a leading non-flag argument before parsing.
	var target string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		target, args = args[0], args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if target == "" && fs.NArg() > 0 {
		target = fs.Arg(0)
	}
	if target == "" {
		return fmt.Errorf("top needs a job id or metrics URL")
	}
	if *n < 0 {
		return fmt.Errorf("-n %d must be non-negative", *n)
	}

	url := target
	if !strings.Contains(target, "://") {
		url = strings.TrimSuffix(*addr, "/") + "/v1/runs/" + target + "/metrics"
	}
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}

	mode := *plain
	if !mode && !stdoutIsTerminal() {
		mode = true
	}
	return runTop(os.Stdout, resp.Body, mode, *n, *width)
}

// stdoutIsTerminal reports whether stdout is a character device, the
// cheap stdlib-only TTY test the progress meter uses too.
func stdoutIsTerminal() bool {
	fi, err := os.Stdout.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

// topState accumulates the stream for rendering.
type topState struct {
	windows   []serve.StreamWindow // every window record seen, in arrival order
	lastSeq   uint64
	gaps      uint64 // records lost to the server's bounded buffer
	starts    uint64
	completes uint64
	retries   uint64
	timeouts  uint64
	abandoned uint64
}

// runTop consumes an NDJSON metrics stream and renders it: the
// screen-oriented live view when plain is false, one line per window
// when true. It returns once the stream ends (done record or EOF) or
// after n window records when n > 0. Factored from cmdTop so tests
// drive it with a synthetic stream.
func runTop(out io.Writer, stream io.Reader, plain bool, n, width int) error {
	if width < 10 {
		width = 10
	}
	var st topState
	sc := bufio.NewScanner(stream)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev serve.StreamWindow
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return fmt.Errorf("bad stream record: %v", err)
		}
		switch ev.Type {
		case "window":
			if len(st.windows) > 0 && ev.Seq > st.lastSeq+1 {
				st.gaps += ev.Seq - st.lastSeq - 1
			}
			st.lastSeq = ev.Seq
			st.windows = append(st.windows, ev)
			st.starts += ev.Starts
			st.completes += ev.Completes
			st.retries += ev.Retries
			st.timeouts += ev.Timeouts
			st.abandoned += ev.Abandoned
			if plain {
				fmt.Fprintln(out, plainLine(ev))
			} else {
				renderScreen(out, &st, width, "")
			}
			if n > 0 && len(st.windows) >= n {
				return nil
			}
		case "done":
			if plain {
				fmt.Fprintf(out, "done state=%s windows=%d gaps=%d\n", ev.State, len(st.windows), st.gaps)
			} else {
				renderScreen(out, &st, width, string(ev.State))
			}
			return nil
		}
	}
	return sc.Err()
}

// plainLine renders one window record as a stable, greppable line.
func plainLine(ev serve.StreamWindow) string {
	return fmt.Sprintf(
		"window seq=%d run=%q idx=%d t=%gus span=%gus starts=%d completes=%d retries=%d timeouts=%d abandoned=%d p50=%gns p99=%gns lfb=%.2f chipq=%.2f sq=%.2f cq=%.2f runq=%.2f",
		ev.Seq, ev.Run, ev.Index, ev.StartUs, ev.SpanUs,
		ev.Starts, ev.Completes, ev.Retries, ev.Timeouts, ev.Abandoned,
		ev.P50Ns, ev.P99Ns,
		ev.LFBMean, ev.ChipMean, ev.SQMean, ev.CQMean, ev.RunnableMean)
}

// sparkRunes are the eight block-element levels of a sparkline cell.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline renders the last width values scaled against their max;
// an all-zero span renders as the lowest level.
func sparkline(vals []float64, width int) string {
	if len(vals) > width {
		vals = vals[len(vals)-width:]
	}
	max := 0.0
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		i := 0
		if max > 0 {
			i = int(v / max * float64(len(sparkRunes)-1))
			if i < 0 {
				i = 0
			}
			if i >= len(sparkRunes) {
				i = len(sparkRunes) - 1
			}
		}
		b.WriteRune(sparkRunes[i])
	}
	return b.String()
}

// renderScreen redraws the live view: totals, the latest window, and
// sparklines over the most recent windows. final, when non-empty, is
// the job's terminal state.
func renderScreen(out io.Writer, st *topState, width int, final string) {
	last := st.windows[len(st.windows)-1]
	completes := make([]float64, len(st.windows))
	p99s := make([]float64, len(st.windows))
	occ := make([]float64, len(st.windows))
	for i, w := range st.windows {
		completes[i] = float64(w.Completes)
		p99s[i] = w.P99Ns
		occ[i] = w.LFBMean + w.ChipMean + w.SQMean + w.CQMean
	}

	fmt.Fprint(out, "\033[H\033[2J") // home + clear
	fmt.Fprintf(out, "kurec top — %d windows, run %q\n", len(st.windows), last.Run)
	fmt.Fprintf(out, "totals: starts=%d completes=%d retries=%d timeouts=%d abandoned=%d gaps=%d\n",
		st.starts, st.completes, st.retries, st.timeouts, st.abandoned, st.gaps)
	fmt.Fprintf(out, "window %3d  t=%-10g span=%gus\n", last.Index, last.StartUs, last.SpanUs)
	fmt.Fprintf(out, "  completes %6d  %s\n", last.Completes, sparkline(completes, width))
	fmt.Fprintf(out, "  p99       %6g  %s\n", last.P99Ns, sparkline(p99s, width))
	fmt.Fprintf(out, "  occupancy %6.2f  %s\n", occ[len(occ)-1], sparkline(occ, width))
	fmt.Fprintf(out, "  gauges: lfb=%.2f/%d chipq=%.2f/%d sq=%.2f/%d cq=%.2f/%d runq=%.2f/%d\n",
		last.LFBMean, last.LFBMax, last.ChipMean, last.ChipMax,
		last.SQMean, last.SQMax, last.CQMean, last.CQMax,
		last.RunnableMean, last.RunnableMax)
	if final != "" {
		fmt.Fprintf(out, "job finished: %s\n", final)
	}
}
