package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/report"
)

// fleetReport builds a one-table report with fleet summaries: a
// round-robin series with a saturated high-load cell, and a
// least-outstanding series that stays clean.
func fleetReport() *report.Report {
	sum := func(policy string, rho float64, sat int) *report.FleetSummary {
		return &report.FleetSummary{
			Policy: policy, Shape: "poisson", Mech: "prefetch",
			Rho: report.Float(rho), OfferedPerSec: 1e6, CompletedPerSec: 9.5e5,
			Arrived: 200, Completed: 200, ElapsedSeconds: 2e-4,
			P50Ns: 900, P99Ns: 4000, P999Ns: 9000,
			Instances: []report.FleetInstance{
				{Arrived: 100, Completed: 100, Windows: 8, SaturatedWindows: sat, PeakOutstanding: 20, P50Ns: 900, P99Ns: 4000, P999Ns: 9000},
				{Arrived: 100, Completed: 100, Windows: 8, PeakOutstanding: 17, P50Ns: 900, P99Ns: 3900, P999Ns: 8000},
			},
		}
	}
	rr := &report.Series{
		Label: "round-robin",
		X:     []report.Float{0.5, 0.9},
		Y:     []report.Float{2.0, 5.3},
		Fleet: []*report.FleetSummary{sum("round-robin", 0.5, 0), sum("round-robin", 0.9, 3)},
	}
	lo := &report.Series{
		Label: "least-outstanding",
		X:     []report.Float{0.5, 0.9},
		Y:     []report.Float{2.1, 4.0},
		Fleet: []*report.FleetSummary{sum("least-outstanding", 0.5, 0), nil},
	}
	return &report.Report{
		Schema: report.SchemaName, Version: report.SchemaVersion, Tool: "test",
		Cluster: &report.ClusterMeta{Version: report.ClusterVersion,
			Policies: []string{"round-robin", "least-outstanding"},
			Shapes:   []string{"poisson", "bursty", "saturate"}},
		Tables: []*report.Table{{ID: "cluster-policies", Title: "t", XLabel: "x", YLabel: "y",
			Series: []*report.Series{rr, lo}}},
	}
}

func TestFleetReportRoundTrips(t *testing.T) {
	path := t.TempDir() + "/run.json"
	if err := fleetReport().WriteFile(path); err != nil {
		t.Fatal(err)
	}
	r, err := report.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	f := r.Table("cluster-policies").FindSeries("round-robin").FleetAt(0.9)
	if f == nil || f.Instances[0].SaturatedWindows != 3 {
		t.Fatalf("fleet summary lost in round trip: %+v", f)
	}
}

func TestFleetSelectsCells(t *testing.T) {
	r := fleetReport()
	if cells := selectFleetCells(r, "", ""); len(cells) != 3 {
		t.Fatalf("selected %d cells, want 3 (nil fleet must be skipped)", len(cells))
	}
	if cells := selectFleetCells(r, "cluster-policies", "least"); len(cells) != 1 {
		t.Fatalf("series filter selected %d cells, want 1", len(cells))
	}
	if cells := selectFleetCells(r, "nope", ""); len(cells) != 0 {
		t.Fatalf("table filter selected %d cells, want 0", len(cells))
	}
}

func TestFleetTextShowsSaturation(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFleetCells(&buf, selectFleetCells(fleetReport(), "", ""), true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "3/16") {
		t.Fatalf("output does not aggregate saturated windows (want 3/16):\n%s", out)
	}
	if !strings.Contains(out, "inst 0") || !strings.Contains(out, "inst 1") {
		t.Fatalf("-instances output missing per-instance rows:\n%s", out)
	}
}

func TestFleetCSVOneRowPerInstance(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFleetCSV(&buf, selectFleetCells(fleetReport(), "", "")); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+3*2 {
		t.Fatalf("CSV has %d lines, want header + 3 cells x 2 instances:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[1], "cluster-policies,round-robin,0.5,round-robin,poisson,prefetch,") {
		t.Fatalf("unexpected first CSV row: %s", lines[1])
	}
}
