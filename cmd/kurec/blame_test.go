package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/report"
)

// blameReport builds a two-series report with attribution: a "swq"
// series whose blame shifts from queue_wait into completion_wait with
// x, and a transit-dominated "pf" series.
func blameReport() *report.Report {
	sum := func(label string, issue, qw, transit, cw int64) *report.AttribSummary {
		return &report.AttribSummary{
			Label: label,
			Phases: []report.PhaseSum{
				{Phase: "issue", SumPs: issue, Count: 10},
				{Phase: "queue_wait", SumPs: qw, Count: 10},
				{Phase: "transit", SumPs: transit, Count: 10},
				{Phase: "completion_wait", SumPs: cw, Count: 10},
			},
			Accesses: 10,
			TotalPs:  issue + qw + transit + cw,
		}
	}
	swq := &report.Series{
		Label:  "swq",
		X:      []report.Float{1, 8},
		Y:      []report.Float{0.3, 0.5},
		Attrib: []*report.AttribSummary{sum("a", 1000, 70000, 20000, 1000), sum("b", 1000, 20000, 20000, 60000)},
	}
	pf := &report.Series{
		Label:  "pf",
		X:      []report.Float{1, 8},
		Y:      []report.Float{0.4, 0.9},
		Attrib: []*report.AttribSummary{sum("c", 1000, 0, 80000, 1000), nil},
	}
	return &report.Report{
		Schema: report.SchemaName, Version: report.SchemaVersion, Tool: "test",
		Attribution: &report.AttributionMeta{Version: report.AttributionVersion,
			Phases: []string{"issue", "queue_wait", "transit", "completion_wait"}},
		Tables: []*report.Table{{ID: "fig7", Title: "t", XLabel: "x", YLabel: "y",
			Series: []*report.Series{swq, pf}}},
	}
}

func writeBlameReport(t *testing.T) string {
	t.Helper()
	path := t.TempDir() + "/run.json"
	if err := blameReport().WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBlameSelectsAttributedCells(t *testing.T) {
	r := blameReport()
	cells := selectBlameCells(r, "", "")
	if len(cells) != 3 {
		t.Fatalf("selected %d cells, want 3 (nil attrib must be skipped)", len(cells))
	}
	if cells := selectBlameCells(r, "fig7", "swq"); len(cells) != 2 {
		t.Fatalf("series filter selected %d cells, want 2", len(cells))
	}
	if cells := selectBlameCells(r, "nope", ""); len(cells) != 0 {
		t.Fatalf("table filter selected %d cells, want 0", len(cells))
	}
}

func TestBlameTopNamesDominantPhase(t *testing.T) {
	var buf bytes.Buffer
	if err := writeBlameTop(&buf, selectBlameCells(blameReport(), "", "swq")); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("top output has %d lines, want header + 2 cells:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[1], "queue_wait") {
		t.Errorf("x=1 dominant phase line = %q, want queue_wait", lines[1])
	}
	if !strings.Contains(lines[2], "completion_wait") {
		t.Errorf("x=8 dominant phase line = %q, want completion_wait", lines[2])
	}
}

func TestBlameCSVIsPivotStable(t *testing.T) {
	var buf bytes.Buffer
	if err := writeBlameCSV(&buf, selectBlameCells(blameReport(), "", "")); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// 3 attributed cells x 4 phases + header; zero phases still get rows.
	if len(lines) != 1+3*4 {
		t.Fatalf("csv has %d lines, want %d:\n%s", len(lines), 1+3*4, buf.String())
	}
	if lines[0] != "table,series,x,accesses,total_ps,mismatches,phase,sum_ps,frac,count,p50_ns,p99_ns,max_ns" {
		t.Fatalf("unexpected header %q", lines[0])
	}
	if !strings.Contains(buf.String(), "fig7,pf,1,10,82000,0,queue_wait,0,0,") {
		t.Errorf("all-zero phase row missing:\n%s", buf.String())
	}
}

func TestBlameDiff(t *testing.T) {
	var buf bytes.Buffer
	if err := blameDiff(&buf, blameReport(), "fig7", "swq,pf"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Only x=1 is attributed on both sides (pf's x=8 cell is nil).
	if strings.Count(out, "swq vs pf") != 1 {
		t.Fatalf("diff should cover exactly the one shared x:\n%s", out)
	}
	// swq spends 7ns more in queue_wait, 6ns less in transit per access
	// (70000 vs 0 ps and 20000 vs 80000 ps over 10 accesses).
	if !strings.Contains(out, "queue_wait") || !strings.Contains(out, "+7ns") {
		t.Errorf("queue_wait delta missing or unsigned:\n%s", out)
	}
	if !strings.Contains(out, "-6ns") {
		t.Errorf("transit delta missing:\n%s", out)
	}
	if err := blameDiff(&buf, blameReport(), "", "swq"); err == nil {
		t.Error("one-label -diff should fail")
	}
	if err := blameDiff(&buf, blameReport(), "", "swq,nope"); err == nil {
		t.Error("unknown label -diff should fail")
	}
}

func TestBlameCommand(t *testing.T) {
	path := writeBlameReport(t)
	if err := cmdBlame([]string{path, "-top"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdBlame([]string{path, "-csv"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdBlame([]string{path}); err != nil {
		t.Fatal(err)
	}
	if err := cmdBlame([]string{path, "-diff", "swq,pf"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdBlame([]string{path, "-series", "nope"}); err == nil {
		t.Error("empty selection should fail")
	}
	if err := cmdBlame([]string{}); err == nil {
		t.Error("blame without a report should fail")
	}

	// A report without an attribution section must be rejected with a
	// hint, not rendered empty.
	plain := blameReport()
	for _, tb := range plain.Tables {
		for _, s := range tb.Series {
			s.Attrib = nil
		}
	}
	plain.Attribution = nil
	pp := t.TempDir() + "/plain.json"
	if err := plain.WriteFile(pp); err != nil {
		t.Fatal(err)
	}
	if err := cmdBlame([]string{pp}); err == nil || !strings.Contains(err.Error(), "-attrib") {
		t.Errorf("plain report error = %v, want a -attrib hint", err)
	}
}
