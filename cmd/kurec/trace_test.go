package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
)

func TestCmdTraceWritesValidFile(t *testing.T) {
	dir := t.TempDir()
	for _, mech := range []string{"ondemand", "prefetch", "swqueue", "kernelq"} {
		out := filepath.Join(dir, mech+".json")
		if err := cmdTrace([]string{"-mech", mech, "-lookups", "40", "-out", out}); err != nil {
			t.Fatalf("%s: %v", mech, err)
		}
		f, err := os.Open(out)
		if err != nil {
			t.Fatal(err)
		}
		sum, err := trace.ReadSummary(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: exported trace fails validation: %v", mech, err)
		}
		if len(sum.Runs) != 1 || sum.Runs[0].Spans == 0 {
			t.Errorf("%s: summary %+v, want one run with spans", mech, sum)
		}
		// The -in path must accept what -out produced.
		if err := cmdTrace([]string{"-in", out}); err != nil {
			t.Errorf("%s: -in rejected our own file: %v", mech, err)
		}
	}
}

func TestCmdTraceRejectsBadInput(t *testing.T) {
	for _, args := range [][]string{
		{"-mech", "telepathy"},
		{"-cores", "0"},
		{"-threads", "0"},
		{"-lookups", "0"},
		{"-workload", "nope"},
	} {
		if err := cmdTrace(args); err == nil {
			t.Errorf("cmdTrace(%v) accepted bad flags", args)
		}
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"traceEvents":[{"ph":"Z"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdTrace([]string{"-in", bad}); err == nil {
		t.Error("-in accepted a malformed trace")
	}
}
