package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"

	"repro/internal/report"
)

// cmdBlame renders the latency-attribution section of a run report
// written with `killerusec -attrib -json`: for every attributed cell,
// where the end-to-end access latency actually went, phase by phase.
//
//	kurec blame run.json                          # waterfall per cell
//	kurec blame run.json -top                     # dominant phase per cell
//	kurec blame run.json -csv > blame.csv         # one row per (cell, phase)
//	kurec blame run.json -table fig7 -series swqueue
//	kurec blame run.json -table fig7 -diff "swqueue 4us,prefetch 4us"
func cmdBlame(args []string) error {
	fs := flag.NewFlagSet("blame", flag.ExitOnError)
	csv := fs.Bool("csv", false, "emit one CSV row per (cell, phase) across all selected cells")
	top := fs.Bool("top", false, "one line per cell naming its dominant phase")
	table := fs.String("table", "", "restrict to this table id")
	series := fs.String("series", "", "restrict to series whose label contains this substring")
	diff := fs.String("diff", "", "compare two series phase-by-phase: exact labels as \"a,b\"")
	// The report path may precede the flags (`kurec blame run.json
	// -csv`) or follow them; peel a leading non-flag argument first.
	var path string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		path, args = args[0], args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if path == "" && fs.NArg() > 0 {
		path = fs.Arg(0)
	}
	if path == "" {
		return fmt.Errorf("blame needs a report file (from `killerusec -attrib -json <file>`)")
	}

	r, err := report.ReadFile(path)
	if err != nil {
		return err
	}
	if r.Attribution == nil {
		return fmt.Errorf("%s has no attribution section (run killerusec with -attrib)", path)
	}

	if *diff != "" {
		return blameDiff(os.Stdout, r, *table, *diff)
	}

	cells := selectBlameCells(r, *table, *series)
	if len(cells) == 0 {
		return fmt.Errorf("%s: no attributed cells match the selection", path)
	}

	switch {
	case *csv:
		return writeBlameCSV(os.Stdout, cells)
	case *top:
		return writeBlameTop(os.Stdout, cells)
	}

	fmt.Printf("%s: attribution v%d, %d phases, %d attributed cells\n",
		path, r.Attribution.Version, len(r.Attribution.Phases), len(cells))
	for _, c := range cells {
		writeWaterfall(os.Stdout, c)
	}
	return nil
}

// blameCell is one datapoint that carries an attribution summary.
type blameCell struct {
	table, series string
	x             float64
	a             *report.AttribSummary
}

// selectBlameCells gathers the attributed cells matching the table and
// series filters, in report order.
func selectBlameCells(r *report.Report, table, series string) []blameCell {
	var cells []blameCell
	for _, t := range r.Tables {
		if table != "" && t.ID != table {
			continue
		}
		for _, s := range t.Series {
			if series != "" && !strings.Contains(s.Label, series) {
				continue
			}
			for i, a := range s.Attrib {
				if a == nil {
					continue
				}
				cells = append(cells, blameCell{t.ID, s.Label, float64(s.X[i]), a})
			}
		}
	}
	return cells
}

// writeWaterfall prints one cell as a fraction-scaled bar per phase,
// largest first, omitting phases that never accrued time.
func writeWaterfall(w io.Writer, c blameCell) {
	a := c.a
	fmt.Fprintf(w, "\n%s %s x=%g — %d accesses, mean %s, %d mismatches\n",
		c.table, c.series, c.x, a.Accesses, fmtNs(a.MeanNs()), a.Mismatches)
	phases := append([]report.PhaseSum(nil), a.Phases...)
	sort.SliceStable(phases, func(i, j int) bool { return phases[i].SumPs > phases[j].SumPs })
	for _, p := range phases {
		if p.SumPs == 0 {
			continue
		}
		frac := 0.0
		if a.TotalPs > 0 {
			frac = float64(p.SumPs) / float64(a.TotalPs)
		}
		bar := strings.Repeat("#", int(frac*40+0.5))
		meanNs := 0.0
		if a.Accesses > 0 {
			meanNs = float64(p.SumPs) / 1e3 / float64(a.Accesses)
		}
		fmt.Fprintf(w, "  %-16s %5.1f%%  %-40s %9s mean  p99 %s\n",
			p.Phase, frac*100, bar, fmtNs(meanNs), fmtNs(float64(p.P99Ns)))
	}
}

// writeBlameTop prints one line per cell naming the phase that owns
// the largest share of its latency.
func writeBlameTop(w io.Writer, cells []blameCell) error {
	fmt.Fprintf(w, "%-8s %-28s %8s %-16s %7s %12s %10s\n",
		"table", "series", "x", "dominant", "share", "mean", "accesses")
	for _, c := range cells {
		ph, frac := c.a.DominantPhase()
		if ph == "" {
			ph = "(idle)"
		}
		if _, err := fmt.Fprintf(w, "%-8s %-28s %8g %-16s %6.1f%% %12s %10d\n",
			c.table, c.series, c.x, ph, frac*100, fmtNs(c.a.MeanNs()), c.a.Accesses); err != nil {
			return err
		}
	}
	return nil
}

// writeBlameCSV flattens the selection into one row per (cell, phase),
// cells in report order, phases in taxonomy order. All phases appear,
// including all-zero ones, so the column set is pivot-stable.
func writeBlameCSV(w io.Writer, cells []blameCell) error {
	if _, err := fmt.Fprintln(w, "table,series,x,accesses,total_ps,mismatches,phase,sum_ps,frac,count,p50_ns,p99_ns,max_ns"); err != nil {
		return err
	}
	for _, c := range cells {
		for _, p := range c.a.Phases {
			frac := 0.0
			if c.a.TotalPs > 0 {
				frac = float64(p.SumPs) / float64(c.a.TotalPs)
			}
			_, err := fmt.Fprintf(w, "%s,%s,%g,%d,%d,%d,%s,%d,%g,%d,%g,%g,%g\n",
				csvField(c.table), csvField(c.series), c.x, c.a.Accesses, c.a.TotalPs, c.a.Mismatches,
				p.Phase, p.SumPs, frac, p.Count, float64(p.P50Ns), float64(p.P99Ns), float64(p.MaxNs))
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// blameDiff compares two series of one table phase-by-phase at every x
// where both are attributed: the mechanism-vs-mechanism view ("where
// does swqueue spend the time prefetch doesn't?").
func blameDiff(w io.Writer, r *report.Report, table, spec string) error {
	labelA, labelB, ok := strings.Cut(spec, ",")
	labelA, labelB = strings.TrimSpace(labelA), strings.TrimSpace(labelB)
	if !ok || labelA == "" || labelB == "" {
		return fmt.Errorf("-diff wants two exact series labels: \"a,b\"")
	}
	var tables []*report.Table
	for _, t := range r.Tables {
		if table == "" || t.ID == table {
			tables = append(tables, t)
		}
	}
	shared := 0
	for _, t := range tables {
		sa, sb := t.FindSeries(labelA), t.FindSeries(labelB)
		if sa == nil || sb == nil {
			continue
		}
		for i, aa := range sa.Attrib {
			if aa == nil {
				continue
			}
			x := float64(sa.X[i])
			ab := attribAtX(sb, x)
			if ab == nil {
				continue
			}
			shared++
			fmt.Fprintf(w, "\n%s x=%g: %s vs %s (mean %s vs %s)\n",
				t.ID, x, labelA, labelB, fmtNs(aa.MeanNs()), fmtNs(ab.MeanNs()))
			writePhaseDeltas(w, aa, ab)
		}
	}
	if shared == 0 {
		return fmt.Errorf("series %q and %q share no attributed x (check -table and labels)", labelA, labelB)
	}
	return nil
}

// writePhaseDeltas prints per-access mean deltas for every phase either
// side spent time in, largest absolute delta first.
func writePhaseDeltas(w io.Writer, a, b *report.AttribSummary) {
	type row struct {
		phase        string
		deltaNs      float64
		fracA, fracB float64
	}
	var rows []row
	for _, p := range a.Phases {
		bPs := b.PhasePs(p.Phase)
		if p.SumPs == 0 && bPs == 0 {
			continue
		}
		var meanA, meanB float64
		if a.Accesses > 0 {
			meanA = float64(p.SumPs) / 1e3 / float64(a.Accesses)
		}
		if b.Accesses > 0 {
			meanB = float64(bPs) / 1e3 / float64(b.Accesses)
		}
		var fa, fb float64
		if a.TotalPs > 0 {
			fa = float64(p.SumPs) / float64(a.TotalPs)
		}
		if b.TotalPs > 0 {
			fb = float64(bPs) / float64(b.TotalPs)
		}
		rows = append(rows, row{p.Phase, meanA - meanB, fa, fb})
	}
	sort.SliceStable(rows, func(i, j int) bool {
		return math.Abs(rows[i].deltaNs) > math.Abs(rows[j].deltaNs)
	})
	for _, r := range rows {
		delta := fmtNs(r.deltaNs)
		if r.deltaNs > 0 {
			delta = "+" + delta
		}
		fmt.Fprintf(w, "  %-16s %10s  (%5.1f%% vs %5.1f%%)\n",
			r.phase, delta, r.fracA*100, r.fracB*100)
	}
}

// attribAtX finds s's attribution summary at x, nil when absent.
func attribAtX(s *report.Series, x float64) *report.AttribSummary {
	if s == nil {
		return nil
	}
	for i, a := range s.Attrib {
		if a != nil && float64(s.X[i]) == x {
			return a
		}
	}
	return nil
}

// fmtNs renders a nanosecond quantity at a human scale (ns or us).
func fmtNs(ns float64) string {
	if math.IsNaN(ns) {
		return "n/a"
	}
	if math.Abs(ns) >= 1000 {
		return fmt.Sprintf("%.2fus", ns/1000)
	}
	return fmt.Sprintf("%.0fns", ns)
}
