package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/attrib"
	"repro/internal/report"
)

// metricsReport builds a one-cell report whose time series carries two
// windows, optionally with attribution phase columns.
func metricsReport(withPhases bool) *report.Report {
	ts := &report.TimeSeries{
		WindowUs:   10,
		LastSpanUs: 4,
		Starts:     []uint64{5, 3},
		Completes:  []uint64{4, 4},
		Retries:    []uint64{0, 1},
		Timeouts:   []uint64{0, 0},
		Abandoned:  []uint64{0, 0},
		Switches:   []uint64{2, 2},
		P50Ns:      []report.Float{100, 110},
		P99Ns:      []report.Float{200, 210},
		P999Ns:     []report.Float{300, 310},
		LFBMean:    []report.Float{1, 2}, LFBMax: []int{2, 3},
		ChipMean: []report.Float{0, 0}, ChipMax: []int{0, 0},
		SQMean: []report.Float{0, 0}, SQMax: []int{0, 0},
		CQMean: []report.Float{0, 0}, CQMax: []int{0, 0},
		RunnableMean: []report.Float{1, 1}, RunnableMax: []int{1, 1},
	}
	if withPhases {
		ts.PhaseNames = attrib.Names()
		row := func(qw int64) []int64 {
			r := make([]int64, len(ts.PhaseNames))
			for j, name := range ts.PhaseNames {
				if name == "queue_wait" {
					r[j] = qw
				}
			}
			return r
		}
		ts.Phases = [][]int64{row(1500), row(2500)}
	}
	return &report.Report{
		Schema: report.SchemaName, Version: report.SchemaVersion, Tool: "test",
		Timeseries: &report.TimeseriesMeta{Version: report.TimeseriesVersion, WindowUs: 10, MaxWindows: 512},
		Tables: []*report.Table{{ID: "fig3", Title: "t", XLabel: "x", YLabel: "y",
			Series: []*report.Series{{
				Label: "1us", X: []report.Float{8}, Y: []report.Float{0.9},
				Metrics: []*report.TimeSeries{ts},
			}}}},
	}
}

func TestMetricsCSVPhaseColumns(t *testing.T) {
	grab := func(withPhases bool) []string {
		r := metricsReport(withPhases)
		var buf bytes.Buffer
		var cells []metricsCell
		for _, tb := range r.Tables {
			for _, s := range tb.Series {
				for i, ts := range s.Metrics {
					cells = append(cells, metricsCell{tb.ID, s.Label, float64(s.X[i]), ts})
				}
			}
		}
		if err := writeMetricsCSV(&buf, cells); err != nil {
			t.Fatal(err)
		}
		return strings.Split(strings.TrimSpace(buf.String()), "\n")
	}

	with := grab(true)
	without := grab(false)
	if with[0] != without[0] {
		t.Fatalf("header depends on phase presence:\n%s\n%s", with[0], without[0])
	}
	if !strings.HasSuffix(with[0], ",timeout_slop_ps") || !strings.Contains(with[0], ",queue_wait_ps,") {
		t.Fatalf("header lacks taxonomy phase columns: %s", with[0])
	}
	if !strings.HasSuffix(with[1], ",1500,0,0,0,0,0,0") && !strings.Contains(with[1], ",1500,") {
		t.Errorf("window 0 queue_wait_ps missing: %s", with[1])
	}
	if !strings.Contains(with[2], ",2500,") {
		t.Errorf("window 1 queue_wait_ps missing: %s", with[2])
	}
	// A phase-less cell still fills every phase column, with zeros.
	cols := strings.Split(without[1], ",")
	hdr := strings.Split(without[0], ",")
	if len(cols) != len(hdr) {
		t.Fatalf("row has %d fields, header %d", len(cols), len(hdr))
	}
	for _, c := range cols[len(cols)-len(attrib.Names()):] {
		if c != "0" {
			t.Errorf("phase-less row has non-zero phase field %q: %s", c, without[1])
		}
	}
}

func TestMetricsCSVStableWithoutTimeseries(t *testing.T) {
	// -csv on a report with no timeseries section prints the header and
	// succeeds; summary mode keeps the actionable error.
	r := metricsReport(false)
	r.Timeseries = nil
	r.Tables[0].Series[0].Metrics = nil
	path := t.TempDir() + "/plain.json"
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if err := cmdMetrics([]string{path, "-csv"}); err != nil {
		t.Fatalf("-csv on a plain report: %v", err)
	}
	if err := cmdMetrics([]string{path}); err == nil || !strings.Contains(err.Error(), "-metrics") {
		t.Errorf("summary mode error = %v, want a -metrics hint", err)
	}
}

func TestMetricsCommand(t *testing.T) {
	path := t.TempDir() + "/run.json"
	if err := metricsReport(true).WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if err := cmdMetrics([]string{path}); err != nil {
		t.Fatal(err)
	}
	if err := cmdMetrics([]string{path, "-csv", "-table", "fig3", "-series", "1us"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdMetrics([]string{path, "-series", "nope"}); err == nil {
		t.Error("summary mode with empty selection should fail")
	}
	if err := cmdMetrics([]string{}); err == nil {
		t.Error("metrics without a report should fail")
	}
}
