package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/attrib"
	"repro/internal/report"
)

// cmdMetrics extracts the flight-recorder time series from a run
// report written with `killerusec -metrics -json` (or fetched from
// kurecd). The default output is a per-cell summary; -csv emits every
// window of every cell as one flat CSV for plotting.
//
//	kurec metrics run.json
//	kurec metrics run.json -csv > windows.csv
//	kurec metrics run.json -csv -table fig3 -series prefetch
func cmdMetrics(args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	csv := fs.Bool("csv", false, "emit one CSV row per window across all selected cells")
	table := fs.String("table", "", "restrict to this table id")
	series := fs.String("series", "", "restrict to series whose label contains this substring")
	// The report path may precede the flags (`kurec metrics run.json
	// -csv`) or follow them; peel a leading non-flag argument first.
	var path string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		path, args = args[0], args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if path == "" && fs.NArg() > 0 {
		path = fs.Arg(0)
	}
	if path == "" {
		return fmt.Errorf("metrics needs a report file (from `killerusec -metrics -json <file>`)")
	}

	r, err := report.ReadFile(path)
	if err != nil {
		return err
	}
	// CSV mode never errors on an empty selection: a report without a
	// timeseries section (or with nothing matching the filters) yields
	// just the header, so a pipeline concatenating many reports always
	// sees the same stable column set.
	if r.Timeseries == nil && !*csv {
		return fmt.Errorf("%s has no timeseries section (run killerusec with -metrics)", path)
	}

	var cells []metricsCell
	for _, t := range r.Tables {
		if *table != "" && t.ID != *table {
			continue
		}
		for _, s := range t.Series {
			if *series != "" && !strings.Contains(s.Label, *series) {
				continue
			}
			for i, ts := range s.Metrics {
				if ts == nil {
					continue
				}
				cells = append(cells, metricsCell{t.ID, s.Label, float64(s.X[i]), ts})
			}
		}
	}
	if *csv {
		return writeMetricsCSV(os.Stdout, cells)
	}
	if len(cells) == 0 {
		return fmt.Errorf("%s: no cells with metrics match the selection", path)
	}

	fmt.Printf("%s: timeseries v%d, window %gus, %d cells with metrics\n",
		path, r.Timeseries.Version, r.Timeseries.WindowUs, len(cells))
	fmt.Printf("%-8s %-28s %8s %8s %10s %10s %10s %10s\n",
		"table", "series", "x", "windows", "starts", "completes", "p99_ns", "coalesced")
	for _, c := range cells {
		fmt.Printf("%-8s %-28s %8g %8d %10d %10d %10g %10d\n",
			c.table, c.series, c.x, c.ts.Windows(),
			c.ts.TotalStarts, c.ts.TotalCompletes, float64(c.ts.TotalP99Ns), c.ts.Coalesced)
	}
	return nil
}

// metricsCell is one datapoint that carries a flight-recorder series.
type metricsCell struct {
	table, series string
	x             float64
	ts            *report.TimeSeries
}

// writeMetricsCSV flattens every window of every cell into one CSV
// stream: one row per (cell, window), cells in report order. The
// column set is fixed — it always ends with one `<phase>_ps` column
// per attribution phase (zeros when the run had no -attrib), so the
// header is identical no matter which sections the report carries.
func writeMetricsCSV(w io.Writer, cells []metricsCell) error {
	header := "table,series,x,window,start_us,window_us,starts,completes,retries,timeouts,abandoned,switches,p50_ns,p99_ns,p999_ns,lfb_mean,lfb_max,chipq_mean,chipq_max,sq_mean,sq_max,cq_mean,cq_max,runnable_mean,runnable_max"
	phases := attrib.Names()
	for _, ph := range phases {
		header += "," + ph + "_ps"
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for _, c := range cells {
		ts := c.ts
		windowUs := float64(ts.WindowUs)
		// Map this cell's phase columns onto the canonical taxonomy; a
		// cell without phase columns emits zeros.
		col := make(map[string]int, len(ts.PhaseNames))
		for j, name := range ts.PhaseNames {
			col[name] = j
		}
		for i := range ts.Starts {
			spanUs := windowUs
			if i == len(ts.Starts)-1 {
				spanUs = float64(ts.LastSpanUs)
			}
			_, err := fmt.Fprintf(w, "%s,%s,%g,%d,%g,%g,%d,%d,%d,%d,%d,%d,%g,%g,%g,%g,%d,%g,%d,%g,%d,%g,%d,%g,%d",
				csvField(c.table), csvField(c.series), c.x, i, float64(i)*windowUs, spanUs,
				ts.Starts[i], ts.Completes[i], ts.Retries[i], ts.Timeouts[i], ts.Abandoned[i], ts.Switches[i],
				float64(ts.P50Ns[i]), float64(ts.P99Ns[i]), float64(ts.P999Ns[i]),
				float64(ts.LFBMean[i]), ts.LFBMax[i],
				float64(ts.ChipMean[i]), ts.ChipMax[i],
				float64(ts.SQMean[i]), ts.SQMax[i],
				float64(ts.CQMean[i]), ts.CQMax[i],
				float64(ts.RunnableMean[i]), ts.RunnableMax[i])
			if err != nil {
				return err
			}
			for _, ph := range phases {
				var ps int64
				if j, ok := col[ph]; ok && i < len(ts.Phases) {
					ps = ts.Phases[i][j]
				}
				if _, err := fmt.Fprintf(w, ",%d", ps); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// csvField quotes a field when it contains CSV metacharacters.
func csvField(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
