package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/report"
)

// cmdFleet renders the cluster section of a run report written with
// `killerusec -fleet -json`: for every fleet cell, the offered and
// completed rates, the merged fleet tail, and the per-instance
// saturation accounting.
//
//	kurec fleet run.json                          # one line per fleet cell
//	kurec fleet run.json -instances               # plus per-instance rows
//	kurec fleet run.json -csv > fleet.csv         # one row per (cell, instance)
//	kurec fleet run.json -table cluster-mechs -series swqueue
func cmdFleet(args []string) error {
	fs := flag.NewFlagSet("fleet", flag.ExitOnError)
	csv := fs.Bool("csv", false, "emit one CSV row per (cell, instance) across all selected cells")
	instances := fs.Bool("instances", false, "print per-instance rows under each fleet cell")
	table := fs.String("table", "", "restrict to this table id")
	series := fs.String("series", "", "restrict to series whose label contains this substring")
	// The report path may precede the flags (`kurec fleet run.json
	// -csv`) or follow them; peel a leading non-flag argument first.
	var path string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		path, args = args[0], args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if path == "" && fs.NArg() > 0 {
		path = fs.Arg(0)
	}
	if path == "" {
		return fmt.Errorf("fleet needs a report file (from `killerusec -fleet -json <file>`)")
	}

	r, err := report.ReadFile(path)
	if err != nil {
		return err
	}
	if r.Cluster == nil {
		return fmt.Errorf("%s has no cluster section (run killerusec with -fleet)", path)
	}

	cells := selectFleetCells(r, *table, *series)
	if len(cells) == 0 {
		return fmt.Errorf("%s: no fleet cells match the selection", path)
	}

	if *csv {
		return writeFleetCSV(os.Stdout, cells)
	}

	fmt.Printf("%s: cluster v%d, policies %s, shapes %s, %d fleet cells\n",
		path, r.Cluster.Version,
		strings.Join(r.Cluster.Policies, "/"), strings.Join(r.Cluster.Shapes, "/"), len(cells))
	return writeFleetCells(os.Stdout, cells, *instances)
}

// fleetCell is one datapoint that carries a fleet summary.
type fleetCell struct {
	table, series string
	x             float64
	f             *report.FleetSummary
}

// selectFleetCells gathers the fleet cells matching the table and
// series filters, in report order.
func selectFleetCells(r *report.Report, table, series string) []fleetCell {
	var cells []fleetCell
	for _, t := range r.Tables {
		if table != "" && t.ID != table {
			continue
		}
		for _, s := range t.Series {
			if series != "" && !strings.Contains(s.Label, series) {
				continue
			}
			for i, f := range s.Fleet {
				if f == nil {
					continue
				}
				cells = append(cells, fleetCell{t.ID, s.Label, float64(s.X[i]), f})
			}
		}
	}
	return cells
}

// writeFleetCells prints one line per fleet cell — and, when asked,
// one indented row per instance beneath it.
func writeFleetCells(w io.Writer, cells []fleetCell, perInstance bool) error {
	fmt.Fprintf(w, "%-16s %-20s %6s %-10s %5s %12s %9s %9s %9s %9s\n",
		"table", "series", "x", "mech", "inst", "completed", "absorb", "p50", "p99", "sat")
	for _, c := range cells {
		f := c.f
		absorb := "n/a"
		if v := float64(f.OfferedPerSec); v > 0 {
			absorb = fmt.Sprintf("%.3f", float64(f.CompletedPerSec)/v)
		}
		sat, windows := 0, 0
		for _, in := range f.Instances {
			sat += in.SaturatedWindows
			windows += in.Windows
		}
		if _, err := fmt.Fprintf(w, "%-16s %-20s %6g %-10s %5d %12d %9s %9s %9s %4d/%-4d\n",
			c.table, c.series, c.x, f.Mech, len(f.Instances), f.Completed,
			absorb, fmtNs(float64(f.P50Ns)), fmtNs(float64(f.P99Ns)), sat, windows); err != nil {
			return err
		}
		if !perInstance {
			continue
		}
		for i, in := range f.Instances {
			if _, err := fmt.Fprintf(w, "  inst %-3d arrived %-7d completed %-7d peak %-5d p99 %-9s sat %d/%d\n",
				i, in.Arrived, in.Completed, in.PeakOutstanding,
				fmtNs(float64(in.P99Ns)), in.SaturatedWindows, in.Windows); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeFleetCSV flattens the selection into one row per (cell,
// instance), cells in report order, so per-instance load imbalance and
// saturation pivot cleanly.
func writeFleetCSV(w io.Writer, cells []fleetCell) error {
	if _, err := fmt.Fprintln(w, "table,series,x,policy,shape,mech,rho,offered_per_sec,completed_per_sec,fleet_p99_ns,instance,arrived,completed,windows,saturated_windows,peak_outstanding,p50_ns,p99_ns,p999_ns"); err != nil {
		return err
	}
	for _, c := range cells {
		f := c.f
		for i, in := range f.Instances {
			_, err := fmt.Fprintf(w, "%s,%s,%g,%s,%s,%s,%g,%g,%g,%g,%d,%d,%d,%d,%d,%d,%g,%g,%g\n",
				csvField(c.table), csvField(c.series), c.x, csvField(f.Policy), csvField(f.Shape), csvField(f.Mech),
				float64(f.Rho), float64(f.OfferedPerSec), float64(f.CompletedPerSec), float64(f.P99Ns),
				i, in.Arrived, in.Completed, in.Windows, in.SaturatedWindows, in.PeakOutstanding,
				float64(in.P50Ns), float64(in.P99Ns), float64(in.P999Ns))
			if err != nil {
				return err
			}
		}
	}
	return nil
}
