// Command kurecd is the sweep service daemon: it accepts experiment
// run plans over HTTP, executes them through the parallel cell
// executor with a shared result cache, and serves progress and
// finished run reports.
//
// Usage:
//
//	kurecd -addr :8080 -parallel 8 -journal kurecd.wal -cachedir .kucache
//	curl -X POST localhost:8080/v1/runs -d '{"suite":"quick","experiments":["2"]}'
//	curl localhost:8080/v1/runs/job-0001
//	curl -X DELETE localhost:8080/v1/runs/job-0001          # cancel
//	curl localhost:8080/v1/runs/job-0001/report | kurec check -in /dev/stdin -claims
//
// SIGINT/SIGTERM drain gracefully: /readyz flips to 503 so load
// balancers stop routing, the listener stops accepting new work,
// running and queued jobs finish (bounded by -drain-timeout), then the
// process exits 0. With -journal, a crash (SIGKILL, OOM, power cut)
// loses at most the in-flight cell: on the next boot the journal is
// replayed, finished jobs keep their reports, and interrupted jobs are
// re-enqueued — warm from -cachedir, so only missing cells recompute.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		parallel     = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker goroutines per job's cell executor")
		queue        = flag.Int("queue", 8, "maximum number of jobs waiting to run (full queue answers 429)")
		cacheEntries = flag.Int("cache-entries", 16384, "in-memory result-cache capacity (cells)")
		cachedir     = flag.String("cachedir", "", "persist cell results to this directory across restarts")
		journal      = flag.String("journal", "", "durable job journal (WAL) path; jobs survive crashes and are re-enqueued on boot")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Minute, "maximum time to finish outstanding jobs on shutdown")
	)
	flag.Parse()

	if *parallel < 1 {
		fmt.Fprintf(os.Stderr, "kurecd: -parallel %d must be at least 1\n", *parallel)
		os.Exit(1)
	}
	if *queue < 1 {
		fmt.Fprintf(os.Stderr, "kurecd: -queue %d must be at least 1\n", *queue)
		os.Exit(1)
	}

	srv, err := serve.New(serve.Config{
		Parallel:     *parallel,
		QueueDepth:   *queue,
		CacheEntries: *cacheEntries,
		CacheDir:     *cachedir,
		Journal:      *journal,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "kurecd:", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kurecd:", err)
		os.Exit(1)
	}
	httpServer := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpServer.Serve(ln) }()
	// The resolved address (not the flag) so `-addr 127.0.0.1:0` is
	// scriptable: the chaos harness parses this line.
	fmt.Fprintf(os.Stderr, "kurecd: listening on %s (parallel=%d queue=%d)\n", ln.Addr(), *parallel, *queue)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "kurecd:", err)
		os.Exit(1)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "kurecd: %s received, draining\n", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop the listener first so no new jobs arrive, then let the job
	// queue run dry.
	if err := httpServer.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "kurecd: http shutdown:", err)
	}
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "kurecd:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "kurecd: drained cleanly")
}
