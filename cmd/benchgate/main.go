// Command benchgate compares `go test -bench` output against a
// committed baseline and fails on throughput regressions. It is the CI
// regression gate for the engine microbenchmarks: the benchmarks report
// a rate metric (events/sec, cells/sec), benchgate takes the best rate
// per benchmark across -count repetitions (best-of filters scheduler
// noise on shared runners), and compares it with the baseline file.
//
// Usage:
//
//	go test -bench . -benchtime=0.2s -count=3 ./internal/sim/ | benchgate -baseline BENCH_engine.json
//	go test -bench . ./internal/sim/ | benchgate -baseline BENCH_engine.json -update
//
// Exit status: 0 when every baselined benchmark is present and within
// the threshold, 1 on regression or missing benchmark, 2 on usage or
// parse errors. The threshold is generous (default 25% below baseline)
// because CI machines vary; the committed baseline records the rates of
// the machine that last ran -update, and the gate exists to catch
// order-of-magnitude mistakes (an accidental O(n log n)->O(n^2) or a
// reintroduced per-event allocation), not 5% drift.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the schema of BENCH_engine.json.
type Baseline struct {
	Schema int    `json:"schema"`
	Note   string `json:"note,omitempty"`
	// Benchmarks maps the bare benchmark name (GOMAXPROCS suffix
	// stripped) to its recorded best rate.
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// Entry is one benchmark's recorded performance, plus optional gate
// conditions that are hand-pinned in the baseline (and preserved by
// -update, which only refreshes the measured fields).
type Entry struct {
	Metric string  `json:"metric"`        // rate unit, e.g. "events/sec"
	Rate   float64 `json:"rate"`          // best observed rate at -update time
	Allocs float64 `json:"allocs_per_op"` // informational, not gated

	// MinProcs skips this entry entirely when the run's GOMAXPROCS
	// (the -N benchmark-name suffix) is below it — for entries whose
	// gates only make sense on multi-core machines, e.g. a sharded
	// fleet's speedup requirement.
	MinProcs int `json:"min_procs,omitempty"`

	// Versus and MinSpeedup gate a measured speedup within THIS run:
	// this benchmark's rate must be at least MinSpeedup times the rate
	// the same run recorded for the Versus benchmark. Both sides come
	// from the current input, so the check is machine-independent.
	Versus     string  `json:"versus,omitempty"`
	MinSpeedup float64 `json:"min_speedup,omitempty"`

	// Procs is the GOMAXPROCS the rate was observed at (parsed from
	// the -N suffix); carried in memory for MinProcs checks, not
	// serialized.
	Procs int `json:"-"`
}

func main() {
	var (
		basePath  = flag.String("baseline", "BENCH_engine.json", "baseline file to compare against (or write with -update)")
		threshold = flag.Float64("threshold", 0.25, "fail when a rate drops more than this fraction below baseline")
		update    = flag.Bool("update", false, "rewrite the baseline from this run instead of comparing")
		input     = flag.String("input", "-", "benchmark output to read ('-' for stdin)")
	)
	flag.Parse()

	var in io.Reader = os.Stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fatal(2, "%v", err)
		}
		defer f.Close()
		in = f
	}

	got, err := parseBench(in)
	if err != nil {
		fatal(2, "%v", err)
	}
	if len(got) == 0 {
		fatal(2, "no benchmark rate lines found in input (did the run fail, or lack ReportMetric rates?)")
	}

	if *update {
		note := "best-of-run engine benchmark rates; regenerate with `make bench-baseline`"
		// Refresh measured fields only: gate conditions (min_procs,
		// versus, min_speedup) and the note are hand-pinned policy, so
		// an existing baseline's survive the update.
		if data, err := os.ReadFile(*basePath); err == nil {
			var prev Baseline
			if json.Unmarshal(data, &prev) == nil {
				if prev.Note != "" {
					note = prev.Note
				}
				for name, e := range got {
					if p, ok := prev.Benchmarks[name]; ok {
						e.MinProcs, e.Versus, e.MinSpeedup = p.MinProcs, p.Versus, p.MinSpeedup
						got[name] = e
					}
				}
			}
		}
		b := Baseline{
			Schema:     1,
			Note:       note,
			Benchmarks: got,
		}
		data, err := json.MarshalIndent(&b, "", "  ")
		if err != nil {
			fatal(2, "%v", err)
		}
		if err := os.WriteFile(*basePath, append(data, '\n'), 0o644); err != nil {
			fatal(2, "%v", err)
		}
		fmt.Printf("benchgate: wrote %d benchmarks to %s\n", len(got), *basePath)
		return
	}

	data, err := os.ReadFile(*basePath)
	if err != nil {
		fatal(2, "%v (run with -update to create the baseline)", err)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fatal(2, "parsing %s: %v", *basePath, err)
	}
	if base.Schema != 1 {
		fatal(2, "%s: unsupported schema %d", *basePath, base.Schema)
	}

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		want := base.Benchmarks[name]
		have, ok := got[name]
		if !ok {
			fmt.Printf("FAIL %-28s baselined but missing from this run\n", name)
			failed = true
			continue
		}
		if want.MinProcs > 0 && have.Procs < want.MinProcs {
			fmt.Printf("skip %-28s needs %d procs, ran at %d\n", name, want.MinProcs, have.Procs)
			continue
		}
		floor := want.Rate * (1 - *threshold)
		ratio := have.Rate / want.Rate
		status := "ok  "
		if have.Rate < floor {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s %-28s %14.0f %s vs baseline %14.0f (%.2fx, floor %.0f)\n",
			status, name, have.Rate, have.Metric, want.Rate, ratio, floor)

		// Speedup condition: compare against the Versus benchmark's
		// rate from this same run, so machine speed cancels out.
		if want.Versus != "" && want.MinSpeedup > 0 {
			vs, ok := got[want.Versus]
			if !ok {
				fmt.Printf("FAIL %-28s speedup reference %s missing from this run\n", name, want.Versus)
				failed = true
				continue
			}
			speedup := have.Rate / vs.Rate
			status := "ok  "
			if speedup < want.MinSpeedup {
				status = "FAIL"
				failed = true
			}
			fmt.Printf("%s %-28s %14.2fx vs %s (need >= %.2fx)\n",
				status, name, speedup, want.Versus, want.MinSpeedup)
		}
	}
	for name := range got {
		if _, ok := base.Benchmarks[name]; !ok {
			fmt.Printf("new  %-28s %14.0f %s (not baselined; run -update to add)\n",
				name, got[name].Rate, got[name].Metric)
		}
	}
	if failed {
		fmt.Printf("benchgate: regression beyond %.0f%% of %s\n", *threshold*100, *basePath)
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d benchmarks within %.0f%% of %s\n", len(names), *threshold*100, *basePath)
}

// parseBench extracts the best rate per benchmark from `go test -bench`
// output. A result line looks like:
//
//	BenchmarkSchedule-8  242  4941329 ns/op  11367105 events/sec  376 B/op  6 allocs/op
//
// The rate is the value whose unit ends in "/sec"; the "-8" GOMAXPROCS
// suffix is stripped so baselines transfer across machines. With
// -count>1 the same name repeats; the maximum rate wins.
func parseBench(r io.Reader) (map[string]Entry, error) {
	out := map[string]Entry{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		procs := 1
		if i := strings.LastIndex(name, "-"); i > 0 {
			if n, err := strconv.Atoi(name[i+1:]); err == nil {
				name, procs = name[:i], n
			}
		}
		var (
			rate   float64
			metric string
			allocs float64
		)
		for i := 1; i+1 < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; {
			case strings.HasSuffix(unit, "/sec"):
				rate, metric = v, unit
			case unit == "allocs/op":
				allocs = v
			}
		}
		if metric == "" {
			continue // benchmark without a rate metric; not gated
		}
		if prev, ok := out[name]; !ok || rate > prev.Rate {
			out[name] = Entry{Metric: metric, Rate: rate, Allocs: allocs, Procs: procs}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func fatal(code int, format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(code)
}
