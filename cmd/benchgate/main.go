// Command benchgate compares `go test -bench` output against a
// committed baseline and fails on throughput regressions. It is the CI
// regression gate for the engine microbenchmarks: the benchmarks report
// a rate metric (events/sec, cells/sec), benchgate takes the best rate
// per benchmark across -count repetitions (best-of filters scheduler
// noise on shared runners), and compares it with the baseline file.
//
// Usage:
//
//	go test -bench . -benchtime=0.2s -count=3 ./internal/sim/ | benchgate -baseline BENCH_engine.json
//	go test -bench . ./internal/sim/ | benchgate -baseline BENCH_engine.json -update
//
// Exit status: 0 when every baselined benchmark is present and within
// the threshold, 1 on regression or missing benchmark, 2 on usage or
// parse errors. The threshold is generous (default 25% below baseline)
// because CI machines vary; the committed baseline records the rates of
// the machine that last ran -update, and the gate exists to catch
// order-of-magnitude mistakes (an accidental O(n log n)->O(n^2) or a
// reintroduced per-event allocation), not 5% drift.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the schema of BENCH_engine.json.
type Baseline struct {
	Schema int    `json:"schema"`
	Note   string `json:"note,omitempty"`
	// Benchmarks maps the bare benchmark name (GOMAXPROCS suffix
	// stripped) to its recorded best rate.
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// Entry is one benchmark's recorded performance.
type Entry struct {
	Metric string  `json:"metric"`        // rate unit, e.g. "events/sec"
	Rate   float64 `json:"rate"`          // best observed rate at -update time
	Allocs float64 `json:"allocs_per_op"` // informational, not gated
}

func main() {
	var (
		basePath  = flag.String("baseline", "BENCH_engine.json", "baseline file to compare against (or write with -update)")
		threshold = flag.Float64("threshold", 0.25, "fail when a rate drops more than this fraction below baseline")
		update    = flag.Bool("update", false, "rewrite the baseline from this run instead of comparing")
		input     = flag.String("input", "-", "benchmark output to read ('-' for stdin)")
	)
	flag.Parse()

	var in io.Reader = os.Stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fatal(2, "%v", err)
		}
		defer f.Close()
		in = f
	}

	got, err := parseBench(in)
	if err != nil {
		fatal(2, "%v", err)
	}
	if len(got) == 0 {
		fatal(2, "no benchmark rate lines found in input (did the run fail, or lack ReportMetric rates?)")
	}

	if *update {
		b := Baseline{
			Schema:     1,
			Note:       "best-of-run engine benchmark rates; regenerate with `make bench-baseline`",
			Benchmarks: got,
		}
		data, err := json.MarshalIndent(&b, "", "  ")
		if err != nil {
			fatal(2, "%v", err)
		}
		if err := os.WriteFile(*basePath, append(data, '\n'), 0o644); err != nil {
			fatal(2, "%v", err)
		}
		fmt.Printf("benchgate: wrote %d benchmarks to %s\n", len(got), *basePath)
		return
	}

	data, err := os.ReadFile(*basePath)
	if err != nil {
		fatal(2, "%v (run with -update to create the baseline)", err)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fatal(2, "parsing %s: %v", *basePath, err)
	}
	if base.Schema != 1 {
		fatal(2, "%s: unsupported schema %d", *basePath, base.Schema)
	}

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		want := base.Benchmarks[name]
		have, ok := got[name]
		if !ok {
			fmt.Printf("FAIL %-28s baselined but missing from this run\n", name)
			failed = true
			continue
		}
		floor := want.Rate * (1 - *threshold)
		ratio := have.Rate / want.Rate
		status := "ok  "
		if have.Rate < floor {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s %-28s %14.0f %s vs baseline %14.0f (%.2fx, floor %.0f)\n",
			status, name, have.Rate, have.Metric, want.Rate, ratio, floor)
	}
	for name := range got {
		if _, ok := base.Benchmarks[name]; !ok {
			fmt.Printf("new  %-28s %14.0f %s (not baselined; run -update to add)\n",
				name, got[name].Rate, got[name].Metric)
		}
	}
	if failed {
		fmt.Printf("benchgate: regression beyond %.0f%% of %s\n", *threshold*100, *basePath)
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d benchmarks within %.0f%% of %s\n", len(names), *threshold*100, *basePath)
}

// parseBench extracts the best rate per benchmark from `go test -bench`
// output. A result line looks like:
//
//	BenchmarkSchedule-8  242  4941329 ns/op  11367105 events/sec  376 B/op  6 allocs/op
//
// The rate is the value whose unit ends in "/sec"; the "-8" GOMAXPROCS
// suffix is stripped so baselines transfer across machines. With
// -count>1 the same name repeats; the maximum rate wins.
func parseBench(r io.Reader) (map[string]Entry, error) {
	out := map[string]Entry{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var (
			rate   float64
			metric string
			allocs float64
		)
		for i := 1; i+1 < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; {
			case strings.HasSuffix(unit, "/sec"):
				rate, metric = v, unit
			case unit == "allocs/op":
				allocs = v
			}
		}
		if metric == "" {
			continue // benchmark without a rate metric; not gated
		}
		if prev, ok := out[name]; !ok || rate > prev.Rate {
			out[name] = Entry{Metric: metric, Rate: rate, Allocs: allocs}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func fatal(code int, format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(code)
}
