package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/trace"
)

func tinySuite() experiments.Suite {
	s := experiments.Quick()
	s.Iterations = 200
	s.AppLookups = 40
	s.Threads = []int{1, 4}
	return s
}

func TestRunOneKnownIDs(t *testing.T) {
	s := tinySuite()
	ids := []string{"2", "3", "4", "6", "7", "lfb", "switch", "swqopts", "kernelq", "smt", "writes", "tail"}
	for _, id := range ids {
		tables := runOne(s, id)
		if len(tables) == 0 {
			t.Errorf("runOne(%q) returned nothing", id)
			continue
		}
		for _, tb := range tables {
			if len(tb.Series) == 0 {
				t.Errorf("runOne(%q): table %s has no series", id, tb.ID)
			}
		}
	}
}

func TestRunOneFig10Subfigure(t *testing.T) {
	s := tinySuite()
	s.UseReplay = false // keep the smoke test fast
	tables := runOne(s, "10b")
	if len(tables) != 1 || tables[0].ID != "fig10b" {
		t.Fatalf("runOne(10b) = %v", tables)
	}
}

func TestRunOneUnknownID(t *testing.T) {
	if got := runOne(tinySuite(), "nonsense"); got != nil {
		t.Errorf("unknown id returned %v", got)
	}
}

func TestWriteCSVs(t *testing.T) {
	dir := t.TempDir()
	s := tinySuite()
	tables := runOne(s, "2")
	if err := writeCSVs(dir, tables); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig2.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "work instructions per access,") {
		t.Errorf("csv header wrong: %q", string(data)[:40])
	}
}

// TestTracedSweep exercises the -trace wiring: attaching a recorder to
// the suite's base config makes every measured run of a figure land in
// the recorder as its own schema-valid process.
func TestTracedSweep(t *testing.T) {
	s := tinySuite()
	rec := trace.NewRecorder()
	s.Base.Trace = rec
	tables := runOne(s, "4")
	if len(tables) == 0 {
		t.Fatal("runOne(4) returned nothing")
	}
	if rec.Runs() == 0 || rec.Events() == 0 {
		t.Fatalf("traced sweep recorded %d runs / %d events", rec.Runs(), rec.Events())
	}
	path := filepath.Join(t.TempDir(), "fig4.json")
	if err := rec.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sum, err := trace.ReadSummary(f)
	if err != nil {
		t.Fatalf("sweep trace fails schema validation: %v", err)
	}
	if len(sum.Runs) != rec.Runs() {
		t.Errorf("parsed %d runs, recorder has %d", len(sum.Runs), rec.Runs())
	}
	for _, rs := range sum.Runs {
		if rs.OpenSpans != 0 {
			t.Errorf("run %q left %d spans open", rs.Label, rs.OpenSpans)
		}
	}
}

func TestRunOneAliases(t *testing.T) {
	s := tinySuite()
	if runOne(s, "fig3") == nil || runOne(s, "ablation-lfb") == nil || runOne(s, "ext-smt") == nil {
		t.Error("aliases not accepted")
	}
}
