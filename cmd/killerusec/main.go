// Command killerusec regenerates the experimental figures of "Taming
// the Killer Microsecond" (MICRO 2018) from the simulated platform.
//
// Usage:
//
//	killerusec -fig 3            # one figure (2..9, 10, ablations)
//	killerusec -all              # everything, in paper order
//	killerusec -fig 7 -csv       # CSV instead of aligned text
//	killerusec -fig 5 -iters 8000
//	killerusec -table1           # the paper's Table I (taxonomy)
//	killerusec -list             # list experiment IDs
//	killerusec -plans            # per-id descriptions and aliases
//	killerusec -fleet -quick     # cluster-scale fleet experiments
//	killerusec -all -fleet -json r.json  # paper sweep + fleet tables
//	killerusec -fig 4 -quick -trace fig4.json  # Perfetto trace of every run
//	killerusec -all -quick -json BENCH_quick.json  # machine-readable run report
//	killerusec -fig 7 -quick -cpuprofile cpu.pp    # pprof profile of the sweep
//
// Long sweeps print per-table progress and an ETA to stderr when it is
// a terminal (suppressed under -csv and in CI/pipes).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	var (
		fig      = flag.String("fig", "", "experiment to run (see -list): 2..9, 10, 10a..10d, ablations, extensions, cluster")
		all      = flag.Bool("all", false, "run every paper experiment (figures + ablations)")
		ext      = flag.Bool("ext", false, "run the beyond-the-paper extension experiments")
		faults   = flag.Bool("faults", false, "run the fault-injection / recovery experiment family")
		fleet    = flag.Bool("fleet", false, "run (or add, with -all/-ext) the cluster-scale fleet experiments")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned text")
		quick    = flag.Bool("quick", false, "reduced sweep (faster, coarser)")
		iters    = flag.Int("iters", 0, "override microbenchmark iterations per core")
		lookups  = flag.Int("lookups", 0, "override application lookups per core")
		threads  = flag.String("threads", "", "override thread sweep, e.g. 1,2,4,8,16")
		replay   = flag.Bool("replay", true, "use the two-run record/replay methodology for applications")
		table1   = flag.Bool("table1", false, "print the paper's Table I and exit")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		plans    = flag.Bool("plans", false, "list every runnable plan id with aliases and a one-line description, then exit")
		outdir   = flag.String("outdir", "", "also write each table as <outdir>/<id>.csv")
		traceOut = flag.String("trace", "", "write a Chrome trace-event / Perfetto JSON trace of every measured run to this file")
		jsonOut  = flag.String("json", "", "write a machine-readable run report (schema-versioned JSON) to this file; check it with `kurec check`")
		parallel = flag.Int("parallel", 1, "worker goroutines for independent simulation cells; output is byte-identical at any value")
		shards   = flag.Int("shards", 0, "engine-advance workers inside each fleet cell (see -plans for the families that honor it); 0 splits GOMAXPROCS with -parallel; output is byte-identical at any value")
		cachedir = flag.String("cachedir", "", "persist cell results to this directory and reuse them across invocations of the same build")
		cpuprof  = flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
		memprof  = flag.String("memprofile", "", "write a pprof heap profile (taken after the sweep) to this file")
		metrics  = flag.Bool("metrics", false, "record a windowed flight-recorder time series per measured run (requires -json; composes with -parallel)")
		metricsW = flag.Float64("metrics-window", 10, "flight-recorder window span in simulated microseconds")
		attribF  = flag.Bool("attrib", false, "record a per-phase latency attribution summary per measured run (requires -json; composes with -parallel and -metrics); inspect with `kurec blame`")
	)
	flag.Parse()

	// Profiling hooks for the perf workflow documented in DESIGN.md:
	// `killerusec -fig 7 -quick -cpuprofile cpu.pp` then
	// `go tool pprof cpu.pp`. The CPU profile covers the whole sweep;
	// the heap profile is a post-sweep snapshot (after one final GC) so
	// it shows what the harness retains, not transient event churn.
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fmt.Fprintln(os.Stderr, "killerusec:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "killerusec:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprof != "" {
		defer func() {
			f, err := os.Create(*memprof)
			if err != nil {
				fmt.Fprintln(os.Stderr, "killerusec:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "killerusec:", err)
			}
		}()
	}

	if *list {
		fmt.Println("paper:      2 3 4 5 6 7 8 9 10 10a 10b 10c 10d")
		fmt.Println("ablations:  lfb chipq rule switch swqopts")
		fmt.Println("extensions: kernelq smt writes membus tail ptrchase devices locality faults")
		fmt.Println("cluster:    cluster (alias: fleet)")
		fmt.Println("families:   -all (paper) -ext (extensions) -faults (fault injection/recovery) -fleet (cluster)")
		fmt.Println("modes:      -quick -csv -outdir <dir> -trace <file> (Perfetto trace) -json <file> (run report)")
		fmt.Println("details:    -plans (per-id descriptions)")
		return
	}
	if *plans {
		fmt.Print(planListing())
		return
	}
	if *table1 {
		fmt.Print(experiments.TableI())
		return
	}

	// Reject bad overrides up front: a sweep takes minutes to hours, so
	// a typo must fail before any simulation starts.
	if *iters < 0 {
		fmt.Fprintf(os.Stderr, "killerusec: -iters %d must be positive\n", *iters)
		os.Exit(1)
	}
	if *lookups < 0 {
		fmt.Fprintf(os.Stderr, "killerusec: -lookups %d must be positive\n", *lookups)
		os.Exit(1)
	}
	if *parallel < 1 {
		fmt.Fprintf(os.Stderr, "killerusec: -parallel %d must be at least 1\n", *parallel)
		os.Exit(1)
	}
	if *shards < 0 {
		fmt.Fprintf(os.Stderr, "killerusec: -shards %d must be non-negative\n", *shards)
		os.Exit(1)
	}

	suite := experiments.Default()
	if *quick {
		suite = experiments.Quick()
	}
	if *iters > 0 {
		suite.Iterations = *iters
	}
	if *lookups > 0 {
		suite.AppLookups = *lookups
	}
	suite.UseReplay = *replay
	// Fleet cells shard their engine advances; -shards 0 (the default)
	// splits the machine with -parallel so cells × shards never
	// oversubscribes. Either way the reports are byte-identical.
	suite.FleetShards = *shards
	if *shards == 0 {
		suite.FleetShards = experiments.ShardBudget(*parallel)
	}
	if *threads != "" {
		var sweep []int
		for _, part := range strings.Split(*threads, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "killerusec: bad -threads element %q\n", part)
				os.Exit(2)
			}
			sweep = append(sweep, n)
		}
		suite.Threads = sweep
	}
	if err := suite.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "killerusec:", err)
		os.Exit(1)
	}

	// The flight recorder rides the normal parallel/cached execution
	// path: the windowed series lands in the JSON run report only, so
	// requesting it without -json would be a silent no-op.
	if *metrics {
		if *jsonOut == "" {
			fmt.Fprintln(os.Stderr, "killerusec: -metrics requires -json (the time series is part of the run report)")
			os.Exit(1)
		}
		if *metricsW <= 0 {
			fmt.Fprintf(os.Stderr, "killerusec: -metrics-window %v must be positive\n", *metricsW)
			os.Exit(1)
		}
		suite.Base.MetricsWindow = sim.FromNanoseconds(*metricsW * 1e3)
	}

	// Attribution likewise lands in the JSON run report only (and, when
	// -metrics is also on, as per-window phase columns in each cell's
	// time series).
	if *attribF {
		if *jsonOut == "" {
			fmt.Fprintln(os.Stderr, "killerusec: -attrib requires -json (the attribution summary is part of the run report)")
			os.Exit(1)
		}
		suite.Base.Attribution = true
	}

	// Tracing attaches one recorder to the whole invocation: every
	// measured run lands as its own process in a single Perfetto file.
	// A trace must contain every run in invocation order, so tracing
	// forces the direct serial path (no pool, no cache).
	var rec *trace.Recorder
	if *traceOut != "" {
		rec = trace.NewRecorder()
		suite.Base.Trace = rec
		if *parallel > 1 {
			fmt.Fprintln(os.Stderr, "killerusec: -trace forces serial uncached execution; ignoring -parallel")
		}
	} else {
		var exec *experiments.Exec
		if *cachedir != "" {
			var err error
			exec, err = experiments.NewExecDisk(*parallel, *cachedir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "killerusec:", err)
				os.Exit(1)
			}
		} else {
			exec = experiments.NewExec(*parallel)
		}
		defer exec.Close()
		suite.Exec = exec
	}

	var plan []experiments.Experiment
	switch {
	case *all && *ext:
		plan = append(suite.PaperPlan(), suite.ExtensionPlan()...)
	case *all:
		plan = suite.PaperPlan()
	case *ext:
		plan = suite.ExtensionPlan()
	case *faults:
		plan = []experiments.Experiment{{ID: "ext-faults", Run: suite.ExpFaults}}
	case *fig != "":
		plan = planOne(suite, strings.ToLower(*fig))
		if plan == nil {
			fmt.Fprintf(os.Stderr, "killerusec: unknown experiment %q (try -list)\n", *fig)
			os.Exit(2)
		}
	case *fleet:
		// -fleet alone runs just the cluster experiments; combined with
		// a family above it appends them (handled below).
	default:
		flag.Usage()
		os.Exit(2)
	}
	if *fleet {
		plan = append(plan, suite.FleetPlan()...)
	}

	meter := newProgressMeter(len(plan), *csv)
	tables := experiments.RunPlan(plan, func(i int, id string) { meter.Step(id) })
	meter.Finish()

	for i, t := range tables {
		if i > 0 {
			fmt.Println()
		}
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Print(t.Text())
		}
	}
	if *outdir != "" {
		if err := writeCSVs(*outdir, tables); err != nil {
			fmt.Fprintln(os.Stderr, "killerusec:", err)
			os.Exit(1)
		}
	}
	if rec != nil {
		if err := rec.WriteFile(*traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "killerusec:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "killerusec: wrote %d trace events (%d runs) to %s\n",
			rec.Events(), rec.Runs(), *traceOut)
	}
	if *jsonOut != "" {
		rep := suite.Report(tables)
		if err := rep.WriteFile(*jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "killerusec:", err)
			os.Exit(1)
		}
		nt, ns, nc := rep.CellCount()
		fmt.Fprintf(os.Stderr, "killerusec: wrote run report (%d tables, %d series, %d cells) to %s\n",
			nt, ns, nc, *jsonOut)
	}
}

// writeCSVs writes one CSV file per table into dir, creating it if
// needed.
func writeCSVs(dir string, tables []*stats.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, t := range tables {
		path := filepath.Join(dir, t.ID+".csv")
		if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// runOne runs a single experiment family by user-facing id, returning
// nil for an unknown id.
func runOne(s experiments.Suite, id string) []*stats.Table {
	plan := planOne(s, id)
	if plan == nil {
		return nil
	}
	return experiments.RunPlan(plan, nil)
}

// planOne maps a user-facing experiment id (with its short aliases)
// onto a one-element execution plan, or nil if the id is unknown. The
// mapping itself lives in the experiments package (PlanFor) so the
// kurecd server resolves ids identically.
func planOne(s experiments.Suite, id string) []experiments.Experiment {
	return experiments.PlanFor(s, id)
}

// planListing renders the -plans output: every runnable id with its
// aliases and one-line description, in registry order. Families whose
// cells shard their engine advances across cores carry a [-shards]
// marker; everything else parallelizes across cells only (-parallel).
func planListing() string {
	var b strings.Builder
	for _, p := range experiments.Plans() {
		id := p.ID
		if len(p.Aliases) > 0 {
			id += " (" + strings.Join(p.Aliases, ", ") + ")"
		}
		desc := p.Desc
		if p.Shards {
			desc += " [-shards]"
		}
		fmt.Fprintf(&b, "%-28s %s\n", id, desc)
	}
	b.WriteString("\nfamilies marked [-shards] advance each cell's instance engines in parallel;\nall families honor -parallel (independent cells across workers)\n")
	return b.String()
}
