package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// TestFig2CSVGolden pins the exact CSV bytes of a small deterministic
// figure: the simulation is seeded and wall-clock free, so any byte of
// drift is a real change to measured results (or to the CSV layout) and
// must be reviewed via `go test ./cmd/killerusec -run Golden -update`.
func TestFig2CSVGolden(t *testing.T) {
	s := tinySuite()
	tables := runOne(s, "2")
	if len(tables) != 1 {
		t.Fatalf("runOne(2) returned %d tables", len(tables))
	}
	got := []byte(tables[0].CSV())

	golden := filepath.Join("testdata", "fig2_quick.csv")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("fig2 CSV drifted from golden (run with -update to refresh):\ngot:\n%swant:\n%s", got, want)
	}

	// -outdir must write the same bytes under <dir>/<id>.csv.
	dir := t.TempDir()
	if err := writeCSVs(dir, tables); err != nil {
		t.Fatal(err)
	}
	out, err := os.ReadFile(filepath.Join(dir, "fig2.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != string(want) {
		t.Error("-outdir CSV differs from stdout CSV for the same table")
	}
}
