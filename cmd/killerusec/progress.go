package main

import (
	"fmt"
	"io"
	"os"
	"time"
)

// progressMeter prints per-table progress and an ETA for multi-minute
// sweeps to stderr. It stays silent when stderr is not a terminal
// (CI, pipes) or when the invocation emits CSV, so machine-consumed
// output never interleaves with progress lines and golden files stay
// byte-stable.
type progressMeter struct {
	w     io.Writer
	total int
	done  int
	start time.Time
}

// stderrIsTerminal reports whether stderr is attached to a character
// device (a terminal) rather than a file or pipe.
func stderrIsTerminal() bool {
	fi, err := os.Stderr.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

// newProgressMeter returns a meter over total plan steps, or nil
// (every method on a nil meter is a no-op) when progress is suppressed.
func newProgressMeter(total int, suppress bool) *progressMeter {
	if suppress || total < 1 || !stderrIsTerminal() {
		return nil
	}
	return &progressMeter{w: os.Stderr, total: total, start: time.Now()}
}

// Step announces the next experiment about to run, with an ETA once at
// least one step has completed (the estimate assumes steps of roughly
// equal cost — coarse, but enough to show a full sweep is alive).
func (p *progressMeter) Step(id string) {
	if p == nil {
		return
	}
	p.done++
	eta := ""
	if p.done > 1 {
		elapsed := time.Since(p.start)
		perStep := elapsed / time.Duration(p.done-1)
		remaining := perStep * time.Duration(p.total-p.done+1)
		eta = fmt.Sprintf(", eta %s", remaining.Round(time.Second))
	}
	fmt.Fprintf(p.w, "killerusec: [%d/%d] %s%s\n", p.done, p.total, id, eta)
}

// Finish reports the total sweep time.
func (p *progressMeter) Finish() {
	if p == nil {
		return
	}
	fmt.Fprintf(p.w, "killerusec: %d experiments in %s\n",
		p.total, time.Since(p.start).Round(time.Second))
}
